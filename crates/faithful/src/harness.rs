//! The faithful-mechanism run engine: configuration + one-shot run
//! functions, plus the deprecated [`FaithfulSim`] adapter.
//!
//! [`FaithfulConfig`] is the plain-data description of one faithful-FPSS
//! instance; [`run_faithful`] assembles the topology nodes plus the bank,
//! runs the whole lifecycle (construction → checkpoints → execution →
//! settlement) inside a single simulator run driven by the bank's
//! quiescence hooks, and converts the bank's settlement plus ground-truth
//! node state into realized utilities. The `specfaith::scenario` layer
//! drives this engine directly.
//!
//! Utility model (see DESIGN.md):
//!
//! ```text
//! uᵢ = W·delivered(i) + transfersᵢ − penaltiesᵢ − cᵢ·carriedᵢ + V
//! ```
//!
//! when execution completes, and `uᵢ = 0` for everyone when the mechanism
//! halts (the paper's "strong negative value when a construction phase
//! does not progress" — V is the progress value forfeited).

use crate::actor::NodeOrBank;
use crate::bank::BankNode;
use crate::node::FaithfulNode;
use specfaith_core::equilibrium::{test_deviations, DeviationSpec, EquilibriumReport};
use specfaith_core::id::NodeId;
use specfaith_core::money::{Cost, Money};
use specfaith_crypto::sha256::Digest;
use specfaith_fpss::deviation::{standard_catalog, Faithful, RationalStrategy};
use specfaith_fpss::node::{StreamCommand, TAG_STREAM};
use specfaith_fpss::pricing::{expected_tables_for, tables_agree};
use specfaith_fpss::runner::ReferenceCheck;
use specfaith_fpss::settle::SettlementConfig;
use specfaith_fpss::traffic::TrafficMatrix;
use specfaith_graph::cache::CacheScope;
use specfaith_graph::costs::CostVector;
use specfaith_graph::topology::Topology;
use specfaith_netsim::{
    Connectivity, Dynamics, Latency, NetModel, NetStats, Network, SimDuration, SimTime,
    TopologyEvent,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Plain-data configuration of a faithful-FPSS simulation instance.
#[derive(Clone, Debug)]
pub struct FaithfulConfig {
    /// The (biconnected) topology.
    pub topo: Topology,
    /// True per-node transit costs.
    pub true_costs: CostVector,
    /// Execution-phase traffic.
    pub traffic: TrafficMatrix,
    /// Settlement parameters (per-packet value `W`).
    pub settlement: SettlementConfig,
    /// The progress value `V` every node forfeits if the mechanism halts.
    pub progress_value: Money,
    /// The ε margin added to clawed-back gains when penalizing.
    pub epsilon: Money,
    /// Construction restarts the bank grants before halting.
    pub max_restarts: u32,
    /// Link latency model.
    pub latency: Latency,
    /// Network model deciding delivery from message size and link load
    /// (default [`NetModel::Ideal`]: latency-only, byte-identical to the
    /// pre-model engine).
    pub network: NetModel,
    /// Scheduled topology dynamics (default: none). Note the bank overlay
    /// node (id `n`) is subject to dynamics like any other: a partition
    /// that excludes it from its island severs checkpointing — the
    /// documented liveness failure mode probed by `tests/network_models.rs`.
    pub dynamics: Dynamics,
    /// Event budget before a run is truncated.
    pub max_events: u64,
    /// Secret the bank derives per-node channel keys from.
    pub bank_secret: Vec<u8>,
    /// Route-cache registry the harness's centralized reference check
    /// draws from. Defaults to the process-shared registry
    /// ([`CacheScope::global`]); run/sweep engines thread a scope of
    /// their own so the caches die with the workload.
    pub routes: CacheScope,
    /// Scope of the post-green-light reference comparison.
    pub reference_check: ReferenceCheck,
}

impl FaithfulConfig {
    /// A configuration with the default enforcement parameters, latency,
    /// and event budget.
    ///
    /// # Panics
    ///
    /// Panics if the topology is not biconnected or arities mismatch.
    pub fn new(topo: Topology, true_costs: CostVector, traffic: TrafficMatrix) -> Self {
        assert!(topo.is_biconnected(), "FPSS requires a biconnected graph");
        assert_eq!(topo.num_nodes(), true_costs.len(), "cost arity");
        FaithfulConfig {
            topo,
            true_costs,
            traffic,
            settlement: SettlementConfig::default(),
            progress_value: Money::new(1_000_000),
            epsilon: Money::new(1),
            max_restarts: 2,
            latency: Latency::DEFAULT,
            network: NetModel::DEFAULT,
            dynamics: Dynamics::new(),
            max_events: 10_000_000,
            bank_secret: b"specfaith-bank-secret".to_vec(),
            routes: CacheScope::global(),
            reference_check: ReferenceCheck::Full,
        }
    }
}

/// Result of one faithful run.
#[derive(Clone, Debug)]
pub struct FaithfulRunResult {
    /// Realized utility per topology node.
    pub utilities: Vec<Money>,
    /// Whether construction was certified and execution ran.
    pub green_lighted: bool,
    /// Whether the mechanism halted (restart budget exhausted).
    pub halted: bool,
    /// Construction restarts performed by the bank.
    pub restarts: u32,
    /// Whether enforcement flagged anything: restarts, halt, penalties,
    /// or authentication failures.
    pub detected: bool,
    /// Penalties charged per node.
    pub penalties: Vec<Money>,
    /// Whether every checked node's certified tables equal the
    /// centralized VCG reference under the declared costs — `Some(_)`
    /// when construction green-lighted (the check draws routes from the
    /// config's [`CacheScope`]), `None` when the mechanism halted before
    /// certifying any tables.
    pub tables_match_centralized: Option<bool>,
    /// Simulator traffic statistics for the whole lifecycle.
    pub stats: NetStats,
    /// Virtual time at which the run settled.
    pub final_time: SimTime,
    /// Whether the event budget truncated the run.
    pub truncated: bool,
}

/// Runs the faithful mechanism with every node honest.
pub fn run_faithful_honest(config: &FaithfulConfig, seed: u64) -> FaithfulRunResult {
    run_faithful(config, |_| Box::new(Faithful), seed)
}

/// Runs the faithful mechanism with `deviant` playing `strategy` and
/// everyone else honest.
pub fn run_faithful_with_deviant(
    config: &FaithfulConfig,
    deviant: NodeId,
    strategy: Box<dyn RationalStrategy>,
    seed: u64,
) -> FaithfulRunResult {
    let mut strategy = Some(strategy);
    run_faithful(
        config,
        move |node| {
            if node == deviant {
                strategy.take().expect("deviant strategy used once")
            } else {
                Box::new(Faithful)
            }
        },
        seed,
    )
}

/// Runs the faithful mechanism with an arbitrary strategy assignment: the
/// whole lifecycle (construction, bank checkpoints, execution, reconciled
/// settlement) in one simulator run.
pub fn run_faithful(
    config: &FaithfulConfig,
    strategies: impl FnMut(NodeId) -> Box<dyn RationalStrategy>,
    seed: u64,
) -> FaithfulRunResult {
    let mut net = assemble(config, strategies, seed, true, false);
    let outcome = net.run();
    harvest(config, &net, outcome.final_time, outcome.truncated)
}

/// Builds the actor set (nodes + bank) and the simulated network for one
/// faithful instance. `queue_traffic` loads the execution flows up front
/// (the one-shot engine); the streaming engine holds them back until
/// [`FaithfulRunState::finish`]. `hold_execution` puts the bank in
/// streaming mode (certify, then park instead of green-lighting).
fn assemble(
    config: &FaithfulConfig,
    mut strategies: impl FnMut(NodeId) -> Box<dyn RationalStrategy>,
    seed: u64,
    queue_traffic: bool,
    hold_execution: bool,
) -> Network<NodeOrBank, Latency> {
    let n = config.topo.num_nodes();
    let bank_id = NodeId::from_index(n);
    let max_hops = (4 * n) as u32;
    let neighbor_map: BTreeMap<NodeId, Vec<NodeId>> = config
        .topo
        .nodes()
        .map(|v| (v, config.topo.neighbors(v).to_vec()))
        .collect();

    let mut actors: Vec<NodeOrBank> = config
        .topo
        .nodes()
        .map(|me| {
            NodeOrBank::Node(Box::new(FaithfulNode::new(
                me,
                config.topo.neighbors(me).to_vec(),
                neighbor_map.clone(),
                config.true_costs.cost(me),
                strategies(me),
                bank_id,
                specfaith_crypto::auth::ChannelKey::derive(&config.bank_secret, me.raw()),
                max_hops,
            )))
        })
        .collect();
    let mut bank = BankNode::new(
        config.topo.clone(),
        &config.bank_secret,
        config.max_restarts,
        config.epsilon,
    );
    if hold_execution {
        bank = bank.with_execution_hold();
    }
    actors.push(NodeOrBank::Bank(Box::new(bank)));

    if queue_traffic {
        // Queue execution traffic up front; nodes send it on green light.
        for flow in config.traffic.flows() {
            actors[flow.src.index()]
                .node_mut()
                .add_traffic(flow.dst, flow.packets);
        }
    }

    Network::new(
        Connectivity::from_topology_with_overlay(&config.topo, 1),
        actors,
        config.latency,
        seed,
    )
    .with_network(&config.network)
    .with_dynamics(&config.dynamics)
    .with_max_events(config.max_events)
}

/// Converts a settled network into a [`FaithfulRunResult`]: utilities from
/// the bank's settlement plus ground-truth node state, detection flags, and
/// the post-green-light centralized reference comparison.
fn harvest(
    config: &FaithfulConfig,
    net: &Network<NodeOrBank, Latency>,
    final_time: SimTime,
    truncated: bool,
) -> FaithfulRunResult {
    let n = config.topo.num_nodes();
    let bank_id = NodeId::from_index(n);
    let bank = net.node(bank_id).bank();
    let green_lighted = bank.green_lighted();
    let halted = bank.halted();
    let restarts = bank.restarts();
    let mut auth_failures = bank.auth_failures();
    for id in config.topo.nodes() {
        auth_failures += net.node(id).node().auth_failures();
    }

    let (utilities, penalties) = match (green_lighted, bank.outcome()) {
        (true, Some(settlement)) => {
            let mut utilities = Vec::with_capacity(n);
            for id in config.topo.nodes() {
                let node = net.node(id).node();
                let delivered = settlement.delivered_by_src[id.index()] as i64;
                let transit_cost = Money::new(config.true_costs.cost(id).value() as i64)
                    .scale(node.carried() as i64);
                let u = config.settlement.per_packet_value.scale(delivered)
                    + settlement.transfers[id.index()]
                    - settlement.penalties[id.index()]
                    - transit_cost
                    + config.progress_value;
                utilities.push(u);
            }
            (utilities, settlement.penalties.clone())
        }
        // Halted (or still unsettled): nobody progresses, nobody gains.
        _ => (vec![Money::ZERO; n], vec![Money::ZERO; n]),
    };

    let detected =
        restarts > 0 || halted || auth_failures > 0 || penalties.iter().any(|p| p.is_positive());

    // Once the bank certifies construction, the certified tables can be
    // compared against the centralized VCG reference under the declared
    // costs — the same pinning the plain engine performs, drawing routes
    // from the config's cache scope.
    let tables_match_centralized = if green_lighted {
        let declared: CostVector = config
            .topo
            .nodes()
            .map(|id| net.node(id).node().declared_cost().expect("started"))
            .collect();
        let routes = config.routes.cache(&config.topo, &declared);
        let ok = config.reference_check.sources(n).iter().all(|&id| {
            let core = net.node(id).node().core();
            let (expected_routing, expected_pricing) = expected_tables_for(&routes, id);
            tables_agree(
                core.routes(),
                core.prices(),
                &expected_routing,
                &expected_pricing,
            )
        });
        // Eager scopes (sweeps) drop this cell's cache here; no-op
        // elsewhere.
        config.routes.release(&routes);
        Some(ok)
    } else {
        None
    };

    FaithfulRunResult {
        utilities,
        green_lighted,
        halted,
        restarts,
        detected,
        penalties,
        tables_match_centralized,
        stats: net.stats().clone(),
        final_time,
        truncated,
    }
}

/// How a streamed [`TopologyEvent`] was handled by
/// [`FaithfulRunState::apply_event`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaithfulEventStatus {
    /// The cost re-declaration was absorbed and a recertification round ran.
    Applied,
    /// A transport latency override only; nothing to re-converge or
    /// recertify.
    LatencyOnly,
    /// Rejected: the node is unknown, or the bank has already halted.
    Rejected,
    /// Churn and partition events hit the faithful mechanism's documented
    /// liveness hole and are refused (reported, never streamed): the bank's
    /// checkpointing requires every node to answer signed hash requests, so
    /// a node leaving — or any partition separating the bank from part of
    /// the network — stalls certification forever rather than failing it
    /// (§4.2 assumes a reliable network; the paper has no churn story).
    /// `tests/network_models.rs` probes the same hole at the transport
    /// level.
    LivenessHole,
}

/// Per-event report from [`FaithfulRunState::apply_event`].
#[derive(Clone, Copy, Debug)]
pub struct FaithfulEventOutcome {
    /// How the event was handled.
    pub status: FaithfulEventStatus,
    /// Messages delivered re-converging and recertifying (protocol flood,
    /// table announcements, and the bank's hash round).
    pub messages: u64,
    /// Virtual time the re-convergence plus recertification took.
    pub micros: u64,
    /// `micros` in whole message rounds under fixed latency; `None` under
    /// jitter.
    pub rounds: Option<u64>,
    /// Whether the bank re-certified the new fixed point (`Some` exactly
    /// when the event applied): principal, announced, and recomputed-mirror
    /// hashes all agree again.
    pub recertified: Option<bool>,
    /// Whether the event budget truncated this re-convergence.
    pub truncated: bool,
}

/// A faithful-mechanism run suspended at a bank-certified fixed point.
///
/// The streaming counterpart of [`run_faithful`], built from the same
/// `assemble`/`harvest` pieces: [`checkpoint`](FaithfulRunState::checkpoint)
/// converges construction and stops at certification (the bank is put in
/// execution hold: it certifies, but parks instead of green-lighting);
/// [`apply_event`](FaithfulRunState::apply_event) streams a
/// [`TopologyEvent::NodeCost`] re-declaration through the live network —
/// CostUpdate flood, destination-scoped recompute at every node *and every
/// checker mirror*, then a full bank recertification round — and
/// [`finish`](FaithfulRunState::finish) releases the held execution phase
/// and settles.
///
/// Unlike [`PlainRunState`](specfaith_fpss::runner::PlainRunState), churn is
/// **not** streamable here: see [`FaithfulEventStatus::LivenessHole`].
pub struct FaithfulRunState {
    config: FaithfulConfig,
    net: Network<NodeOrBank, Latency>,
    bank_id: NodeId,
    declared: CostVector,
    truncated: bool,
}

impl FaithfulRunState {
    /// Runs construction to convergence and bank certification, holding
    /// execution. The returned state is the certified fixed point.
    pub fn checkpoint(
        config: &FaithfulConfig,
        strategies: impl FnMut(NodeId) -> Box<dyn RationalStrategy>,
        seed: u64,
    ) -> FaithfulRunState {
        let mut net = assemble(config, strategies, seed, false, true);
        let outcome = net.run();
        let declared: CostVector = config
            .topo
            .nodes()
            .map(|id| net.node(id).node().declared_cost().expect("started"))
            .collect();
        FaithfulRunState {
            config: config.clone(),
            net,
            bank_id: NodeId::from_index(config.topo.num_nodes()),
            declared,
            truncated: outcome.truncated,
        }
    }

    /// Streams one topology event against the certified fixed point.
    pub fn apply_event(&mut self, event: &TopologyEvent) -> FaithfulEventOutcome {
        let msgs_before = self.net.stats().msgs_delivered;
        let t_before = self.net.now();
        let was_truncated = self.truncated;
        let mut recertified = None;
        let status = match *event {
            TopologyEvent::NodeCost { node, cost } => {
                if node.index() >= self.config.topo.num_nodes() || self.halted() {
                    FaithfulEventStatus::Rejected
                } else {
                    self.net
                        .node_mut(self.bank_id)
                        .bank_mut()
                        .begin_recertification();
                    self.net
                        .node_mut(node)
                        .node_mut()
                        .queue_stream_command(StreamCommand::DeclareCost(Cost::new(cost)));
                    self.net.schedule_timer(node, SimDuration::ZERO, TAG_STREAM);
                    let outcome = self.net.run();
                    self.truncated |= outcome.truncated;
                    let declared = self.net.node(node).node().declared_cost().expect("started");
                    self.declared = self.declared.with_cost(node, declared);
                    recertified = Some(self.net.node(self.bank_id).bank().green_lighted());
                    FaithfulEventStatus::Applied
                }
            }
            TopologyEvent::LinkCost { .. } => {
                self.net.apply_dynamics_event(event);
                FaithfulEventStatus::LatencyOnly
            }
            TopologyEvent::NodeDown(_)
            | TopologyEvent::NodeUp(_)
            | TopologyEvent::Partition { .. }
            | TopologyEvent::Heal => FaithfulEventStatus::LivenessHole,
        };
        let micros = (self.net.now() - t_before).micros();
        let rounds = match self.config.latency {
            Latency::Fixed { micros: per_hop } if per_hop > 0 => Some(micros / per_hop),
            _ => None,
        };
        FaithfulEventOutcome {
            status,
            messages: self.net.stats().msgs_delivered - msgs_before,
            micros,
            rounds,
            recertified,
            truncated: self.truncated && !was_truncated,
        }
    }

    /// Releases the held execution phase and settles, consuming the state.
    pub fn finish(mut self) -> FaithfulRunResult {
        for flow in self.config.traffic.flows() {
            self.net
                .node_mut(flow.src)
                .node_mut()
                .add_traffic(flow.dst, flow.packets);
        }
        self.net
            .node_mut(self.bank_id)
            .bank_mut()
            .request_execution();
        let outcome = self.net.run();
        self.truncated |= outcome.truncated;
        harvest(&self.config, &self.net, outcome.final_time, self.truncated)
    }

    /// Per-node `(data1, routing, pricing)` digests of the certified
    /// tables, in node order — directly comparable with the plain engine's
    /// cold oracle (`specfaith_fpss::runner::converged_table_digests`),
    /// since both mechanisms converge the same [`FpssCore`] fixed point.
    ///
    /// [`FpssCore`]: specfaith_fpss::node::FpssCore
    pub fn table_digests(&self) -> Vec<(Digest, Digest, Digest)> {
        self.config
            .topo
            .nodes()
            .map(|id| {
                let core = self.net.node(id).node().core();
                (
                    core.data1().digest(),
                    core.routes().digest(),
                    core.prices().digest(),
                )
            })
            .collect()
    }

    /// The declared cost vector at the certified fixed point.
    pub fn declared(&self) -> &CostVector {
        &self.declared
    }

    /// Whether the bank currently certifies the fixed point.
    pub fn green_lighted(&self) -> bool {
        self.net.node(self.bank_id).bank().green_lighted()
    }

    /// Whether the bank has halted (restart budget exhausted during a
    /// checkpoint or recertification).
    pub fn halted(&self) -> bool {
        self.net.node(self.bank_id).bank().halted()
    }

    /// Construction restarts the bank has performed so far.
    pub fn restarts(&self) -> u32 {
        self.net.node(self.bank_id).bank().restarts()
    }

    /// Cumulative transport statistics.
    pub fn stats(&self) -> &NetStats {
        self.net.stats()
    }

    /// The configuration this state was checkpointed from.
    pub fn config(&self) -> &FaithfulConfig {
        &self.config
    }
}

/// The deviation specs of the standard catalog (tagged with phases).
pub fn standard_catalog_specs() -> Vec<DeviationSpec> {
    standard_catalog(NodeId::new(0))
        .iter()
        .map(|s| s.spec())
        .collect()
}

/// The serial Theorem-1 sweep on one instance: plays the faithful
/// profile, then every `(node, deviation)` pair from the standard
/// catalog, and returns the equilibrium report (profitability + detection
/// per deviation).
///
/// The `specfaith::scenario` layer supersedes this with a seed-grid,
/// parallel sweep; this function remains the single-instance reference
/// implementation.
pub fn equilibrium_report(config: &FaithfulConfig, seed: u64) -> EquilibriumReport {
    let n = config.topo.num_nodes();
    let specs = standard_catalog_specs();
    // The honest baseline is simulated exactly once, up front, and shared
    // immutably with every (agent, deviation) comparison — the same
    // shape the scenario-level sweep uses per seed.
    let baseline: Arc<FaithfulRunResult> = Arc::new(run_faithful_honest(config, seed));
    test_deviations(n, &specs, |deviation| match deviation {
        None => (baseline.utilities.clone(), baseline.detected),
        Some((agent, spec)) => {
            let agent_id = NodeId::from_index(agent);
            // Forged pricing tags use the deviant's own id: a node is
            // never its own checker, so the tag is guaranteed invalid.
            let strategy = standard_catalog(agent_id)
                .into_iter()
                .find(|s| s.spec().name() == spec.name())
                .expect("spec names are stable");
            let run = run_faithful_with_deviant(config, agent_id, strategy, seed);
            (run.utilities, run.detected)
        }
    })
}

/// Deprecated builder over [`FaithfulConfig`] + [`run_faithful`].
#[deprecated(
    since = "0.2.0",
    note = "use `specfaith::scenario::Scenario::builder()` with `Mechanism::Faithful` (or drive `FaithfulConfig`/`run_faithful` directly)"
)]
#[derive(Clone, Debug)]
pub struct FaithfulSim {
    config: FaithfulConfig,
}

#[allow(deprecated)]
impl FaithfulSim {
    /// A simulation over a biconnected topology.
    ///
    /// # Panics
    ///
    /// Panics if the topology is not biconnected or arities mismatch.
    pub fn new(topo: Topology, true_costs: CostVector, traffic: TrafficMatrix) -> Self {
        FaithfulSim {
            config: FaithfulConfig::new(topo, true_costs, traffic),
        }
    }

    /// Overrides the settlement config (per-packet value `W`).
    #[must_use]
    pub fn with_settlement(mut self, settlement: SettlementConfig) -> Self {
        self.config.settlement = settlement;
        self
    }

    /// Overrides the progress value `V`.
    #[must_use]
    pub fn with_progress_value(mut self, value: Money) -> Self {
        self.config.progress_value = value;
        self
    }

    /// Overrides the restart budget.
    #[must_use]
    pub fn with_max_restarts(mut self, max_restarts: u32) -> Self {
        self.config.max_restarts = max_restarts;
        self
    }

    /// Overrides the event budget.
    #[must_use]
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.config.max_events = max_events;
        self
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.config.topo
    }

    /// Runs with everyone faithful.
    pub fn run_faithful(&self, seed: u64) -> FaithfulRunResult {
        run_faithful_honest(&self.config, seed)
    }

    /// Runs with `deviant` playing `strategy`, everyone else faithful.
    pub fn run_with_deviant(
        &self,
        deviant: NodeId,
        strategy: Box<dyn RationalStrategy>,
        seed: u64,
    ) -> FaithfulRunResult {
        run_faithful_with_deviant(&self.config, deviant, strategy, seed)
    }

    /// Runs with an arbitrary strategy assignment.
    pub fn run_with(
        &self,
        strategies: impl FnMut(NodeId) -> Box<dyn RationalStrategy>,
        seed: u64,
    ) -> FaithfulRunResult {
        run_faithful(&self.config, strategies, seed)
    }

    /// The deviation specs of the standard catalog (tagged with phases).
    pub fn catalog_specs(&self) -> Vec<DeviationSpec> {
        standard_catalog_specs()
    }

    /// The serial Theorem-1 sweep on this instance.
    pub fn equilibrium_report(&self, seed: u64) -> EquilibriumReport {
        equilibrium_report(&self.config, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfaith_fpss::deviation::{
        DeflateOwnPricing, DropCheckerForwards, DropTransitPackets, SpoofShortRoutes,
        UnderreportPayments,
    };
    use specfaith_fpss::pricing::expected_tables;
    use specfaith_fpss::traffic::Flow;
    use specfaith_graph::generators::figure1;

    fn figure1_config() -> (specfaith_graph::generators::Figure1, FaithfulConfig) {
        let net = figure1();
        let traffic = TrafficMatrix::from_flows(vec![
            Flow {
                src: net.x,
                dst: net.z,
                packets: 5,
            },
            Flow {
                src: net.d,
                dst: net.z,
                packets: 5,
            },
            Flow {
                src: net.z,
                dst: net.x,
                packets: 3,
            },
        ]);
        let config = FaithfulConfig::new(net.topology.clone(), net.costs.clone(), traffic);
        (net, config)
    }

    #[test]
    fn faithful_run_green_lights_without_restarts() {
        let (_, config) = figure1_config();
        let run = run_faithful_honest(&config, 1);
        assert!(run.green_lighted, "honest construction certifies");
        assert!(!run.halted);
        assert_eq!(run.restarts, 0);
        assert!(!run.detected);
        assert!(!run.truncated);
    }

    #[test]
    fn faithful_utilities_are_strictly_positive() {
        // Required for halting to be a real punishment: every node must
        // strictly prefer the mechanism completing.
        let (_, config) = figure1_config();
        let run = run_faithful_honest(&config, 1);
        for (i, u) in run.utilities.iter().enumerate() {
            assert!(u.is_positive(), "node {i} has utility {u}");
        }
    }

    #[test]
    fn faithful_nodes_converge_to_vcg_tables() {
        let (net, config) = figure1_config();
        // Re-run manually to inspect node state.
        let run = run_faithful_honest(&config, 1);
        assert!(run.green_lighted);
        let reference = expected_tables(&net.topology, &net.costs);
        // The faithful run's tables are checked indirectly by the bank
        // (hash equality across principal and checkers); sanity-check one
        // payment figure: X pays C p^C per packet, 5 packets.
        let p_c =
            specfaith_fpss::pricing::vcg_payment(&net.topology, &net.costs, net.x, net.z, net.c)
                .expect("C on X→Z LCP");
        let _ = reference;
        assert!(p_c.is_positive());
    }

    #[test]
    fn construction_deviations_are_caught_and_halt() {
        let (net, config) = figure1_config();
        for (name, strategy) in [
            (
                "spoof-short-routes",
                Box::new(SpoofShortRoutes) as Box<dyn RationalStrategy>,
            ),
            (
                "deflate-own-pricing",
                Box::new(DeflateOwnPricing { keep_percent: 50 }),
            ),
            ("drop-checker-forwards", Box::new(DropCheckerForwards)),
        ] {
            let run = run_faithful_with_deviant(&config, net.c, strategy, 1);
            assert!(run.detected, "{name} must be detected");
            assert!(
                !run.green_lighted,
                "{name}: corrupted construction must never green-light"
            );
            assert!(run.halted, "{name}: persistent deviant halts mechanism");
            assert!(run.restarts > 0, "{name}: bank retried before halting");
        }
    }

    #[test]
    fn construction_deviations_are_strictly_unprofitable() {
        let (net, config) = figure1_config();
        let faithful = run_faithful_honest(&config, 1);
        let run = run_faithful_with_deviant(&config, net.c, Box::new(SpoofShortRoutes), 1);
        assert!(
            run.utilities[net.c.index()] < faithful.utilities[net.c.index()],
            "halting forfeits the progress value"
        );
    }

    #[test]
    fn execution_deviations_are_penalized_into_unprofitability() {
        let (net, config) = figure1_config();
        let faithful = run_faithful_honest(&config, 1);

        // Payment fraud: caught by reconciliation, penalty ε-above.
        let fraud = run_faithful_with_deviant(
            &config,
            net.x,
            Box::new(UnderreportPayments { keep_percent: 10 }),
            1,
        );
        assert!(fraud.green_lighted, "construction was honest");
        assert!(fraud.detected);
        assert!(fraud.penalties[net.x.index()].is_positive());
        assert!(
            fraud.utilities[net.x.index()] < faithful.utilities[net.x.index()],
            "underreporting strictly loses: {} vs {}",
            fraud.utilities[net.x.index()],
            faithful.utilities[net.x.index()]
        );

        // Packet dropping: caught by flow conservation.
        let drop = run_faithful_with_deviant(&config, net.c, Box::new(DropTransitPackets), 1);
        assert!(drop.detected);
        assert!(drop.penalties[net.c.index()].is_positive());
        assert!(
            drop.utilities[net.c.index()] < faithful.utilities[net.c.index()],
            "dropping strictly loses: {} vs {}",
            drop.utilities[net.c.index()],
            faithful.utilities[net.c.index()]
        );
    }

    use specfaith_fpss::deviation::{ForceFullRecompute, FullRecomputeFaithful, MisreportCost};

    #[test]
    fn honest_runs_certify_tables_matching_the_centralized_reference() {
        let (_, config) = figure1_config();
        let run = run_faithful_honest(&config, 1);
        assert_eq!(
            run.tables_match_centralized,
            Some(true),
            "green-lighted tables must equal the VCG reference"
        );
        // A construction-corrupting deviant halts before certifying:
        // there are no green-lighted tables to compare.
        let (net, config) = figure1_config();
        let halted = run_faithful_with_deviant(&config, net.c, Box::new(SpoofShortRoutes), 1);
        assert!(!halted.green_lighted);
        assert_eq!(halted.tables_match_centralized, None);
    }

    #[test]
    fn scoped_runs_are_byte_identical_to_the_global_registry_path() {
        // The tentpole pin (faithful engine): run-scoped route caches
        // change nothing observable about a faithful run.
        let (net, config) = figure1_config();
        let mut scoped_config = config.clone();
        scoped_config.routes = specfaith_graph::cache::CacheScope::unbounded();
        for seed in [1u64, 4] {
            let global = run_faithful_honest(&config, seed);
            let scoped = run_faithful_honest(&scoped_config, seed);
            assert_eq!(global.utilities, scoped.utilities, "seed {seed}");
            assert_eq!(global.penalties, scoped.penalties, "seed {seed}");
            assert_eq!(
                global.tables_match_centralized, scoped.tables_match_centralized,
                "seed {seed}"
            );
            assert_eq!(global.stats.total_msgs(), scoped.stats.total_msgs());
            let dg = run_faithful_with_deviant(
                &config,
                net.x,
                Box::new(UnderreportPayments { keep_percent: 10 }),
                seed,
            );
            let ds = run_faithful_with_deviant(
                &scoped_config,
                net.x,
                Box::new(UnderreportPayments { keep_percent: 10 }),
                seed,
            );
            assert_eq!(dg.utilities, ds.utilities);
            assert_eq!(dg.penalties, ds.penalties);
            assert_eq!(dg.detected, ds.detected);
        }
    }

    #[test]
    fn safe_deviants_take_the_incremental_path_byte_identically() {
        // The deviant-node recompute satellite, under the full
        // enforcement stack: a destination-scoped-safe deviant
        // (MisreportCost only perturbs its declaration) on the
        // incremental path is indistinguishable from the same deviant
        // forced onto the full recompute — same utilities, penalties,
        // detection, and message counts.
        let (net, config) = figure1_config();
        let fast =
            run_faithful_with_deviant(&config, net.c, Box::new(MisreportCost { delta: 3 }), 1);
        let slow = run_faithful_with_deviant(
            &config,
            net.c,
            Box::new(ForceFullRecompute(Box::new(MisreportCost { delta: 3 }))),
            1,
        );
        assert_eq!(fast.utilities, slow.utilities);
        assert_eq!(fast.penalties, slow.penalties);
        assert_eq!(fast.detected, slow.detected);
        assert_eq!(fast.green_lighted, slow.green_lighted);
        assert_eq!(
            fast.stats.total_msgs(),
            slow.stats.total_msgs(),
            "announcement traffic must be identical"
        );
    }

    #[test]
    fn incremental_recompute_is_byte_identical_to_full() {
        // Under the faithful mechanism the equivalence must survive the
        // whole enforcement stack: checker mirrors, bank hash
        // checkpoints, reconciliation, settlement.
        let (_, config) = figure1_config();
        let fast = run_faithful_honest(&config, 1);
        let slow = run_faithful(&config, |_| Box::new(FullRecomputeFaithful), 1);
        assert_eq!(fast.utilities, slow.utilities);
        assert_eq!(fast.green_lighted, slow.green_lighted);
        assert_eq!(fast.restarts, slow.restarts);
        assert_eq!(fast.detected, slow.detected);
        assert_eq!(fast.penalties, slow.penalties);
        assert_eq!(
            fast.stats.total_msgs(),
            slow.stats.total_msgs(),
            "announcement traffic must be identical"
        );
    }

    #[test]
    fn figure1_catalog_sweep_is_ex_post_nash() {
        let (_, config) = figure1_config();
        let report = equilibrium_report(&config, 1);
        assert!(report.is_ex_post_nash(), "{report}");
        assert!(report.strong_cc_holds());
        assert!(report.strong_ac_holds());
        assert!(report.ic_holds());
    }

    #[test]
    fn checkpoint_then_finish_matches_the_one_shot_engine() {
        // Parking at certification and immediately releasing execution
        // reproduces the one-shot lifecycle: the held green light is the
        // same broadcast, just issued from a later quiescence round, and
        // the pause consumes no virtual time.
        let (_, config) = figure1_config();
        let oneshot = run_faithful_honest(&config, 1);
        let state = FaithfulRunState::checkpoint(&config, |_| Box::new(Faithful), 1);
        assert!(state.green_lighted(), "honest checkpoint certifies");
        assert!(!state.halted());
        assert_eq!(state.restarts(), 0);
        let staged = state.finish();
        assert_eq!(oneshot.utilities, staged.utilities);
        assert_eq!(oneshot.penalties, staged.penalties);
        assert_eq!(oneshot.green_lighted, staged.green_lighted);
        assert_eq!(oneshot.restarts, staged.restarts);
        assert_eq!(oneshot.detected, staged.detected);
        assert_eq!(
            oneshot.tables_match_centralized,
            staged.tables_match_centralized
        );
        assert_eq!(oneshot.stats.total_msgs(), staged.stats.total_msgs());
        assert_eq!(oneshot.final_time, staged.final_time);
    }

    #[test]
    fn streamed_cost_events_recertify_and_match_the_plain_fixed_point() {
        use specfaith_fpss::runner::converged_table_digests;
        use specfaith_netsim::TopologyEvent;
        let (net, config) = figure1_config();
        let mut state = FaithfulRunState::checkpoint(&config, |_| Box::new(Faithful), 1);
        for (i, (node, cost)) in [(net.c, 9u64), (net.d, 0), (net.c, 9)]
            .into_iter()
            .enumerate()
        {
            let outcome = state.apply_event(&TopologyEvent::NodeCost { node, cost });
            assert_eq!(outcome.status, FaithfulEventStatus::Applied, "event {i}");
            assert_eq!(
                outcome.recertified,
                Some(true),
                "event {i}: principal, announced, and mirror hashes must re-agree"
            );
            assert!(outcome.messages > 0, "event {i}");
            assert!(!outcome.truncated, "event {i}");
            // The certified faithful tables are the same FpssCore fixed
            // point a cold plain run converges to.
            let cold = converged_table_digests(
                &config.topo,
                state.declared(),
                config.latency,
                23 + i as u64,
            );
            assert_eq!(state.table_digests(), cold, "event {i}");
        }
        let result = state.finish();
        assert!(result.green_lighted);
        assert!(!result.detected);
        assert_eq!(result.tables_match_centralized, Some(true));
    }

    #[test]
    fn streamed_churn_reports_the_liveness_hole_instead_of_hanging() {
        use specfaith_netsim::TopologyEvent;
        let (net, config) = figure1_config();
        let mut state = FaithfulRunState::checkpoint(&config, |_| Box::new(Faithful), 1);
        let baseline = state.table_digests();
        for event in [
            TopologyEvent::NodeDown(net.c),
            TopologyEvent::NodeUp(net.c),
            TopologyEvent::Partition {
                island: vec![net.x],
            },
            TopologyEvent::Heal,
        ] {
            let outcome = state.apply_event(&event);
            assert_eq!(
                outcome.status,
                FaithfulEventStatus::LivenessHole,
                "{event:?}: churn stalls the bank's signed hash round; it \
                 must be refused, not streamed"
            );
            assert_eq!(outcome.messages, 0);
            assert_eq!(outcome.recertified, None);
        }
        // The certified fixed point is untouched and still usable.
        assert_eq!(state.table_digests(), baseline);
        assert!(state.green_lighted());
        let result = state.finish();
        assert!(result.green_lighted);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_adapter_matches_engine() {
        let (_, config) = figure1_config();
        let adapter = FaithfulSim::new(
            config.topo.clone(),
            config.true_costs.clone(),
            config.traffic.clone(),
        );
        let via_adapter = adapter.run_faithful(1);
        let via_engine = run_faithful_honest(&config, 1);
        assert_eq!(via_adapter.utilities, via_engine.utilities);
        assert_eq!(via_adapter.restarts, via_engine.restarts);
        assert_eq!(via_adapter.green_lighted, via_engine.green_lighted);
    }
}
