//! One-call faithful runs and the Theorem-1 deviation sweep.
//!
//! [`FaithfulSim`] assembles the topology nodes plus the bank, runs the
//! whole lifecycle (construction → checkpoints → execution → settlement)
//! inside a single simulator run driven by the bank's quiescence hooks,
//! and converts the bank's settlement plus ground-truth node state into
//! realized utilities.
//!
//! Utility model (see DESIGN.md):
//!
//! ```text
//! uᵢ = W·delivered(i) + transfersᵢ − penaltiesᵢ − cᵢ·carriedᵢ + V
//! ```
//!
//! when execution completes, and `uᵢ = 0` for everyone when the mechanism
//! halts (the paper's "strong negative value when a construction phase
//! does not progress" — V is the progress value forfeited).

use crate::actor::NodeOrBank;
use crate::bank::BankNode;
use crate::node::FaithfulNode;
use specfaith_core::equilibrium::{test_deviations, DeviationSpec, EquilibriumReport};
use specfaith_core::id::NodeId;
use specfaith_core::money::Money;
use specfaith_fpss::deviation::{standard_catalog, Faithful, RationalStrategy};
use specfaith_fpss::settle::SettlementConfig;
use specfaith_fpss::traffic::TrafficMatrix;
use specfaith_graph::costs::CostVector;
use specfaith_graph::topology::Topology;
use specfaith_netsim::{Connectivity, FixedLatency, NetStats, Network};
use std::collections::BTreeMap;

/// Configuration for faithful-FPSS simulations.
#[derive(Clone, Debug)]
pub struct FaithfulSim {
    topo: Topology,
    true_costs: CostVector,
    traffic: TrafficMatrix,
    settlement: SettlementConfig,
    progress_value: Money,
    epsilon: Money,
    max_restarts: u32,
    latency_micros: u64,
    max_events: u64,
    bank_secret: Vec<u8>,
}

/// Result of one faithful run.
#[derive(Clone, Debug)]
pub struct FaithfulRunResult {
    /// Realized utility per topology node.
    pub utilities: Vec<Money>,
    /// Whether construction was certified and execution ran.
    pub green_lighted: bool,
    /// Whether the mechanism halted (restart budget exhausted).
    pub halted: bool,
    /// Construction restarts performed by the bank.
    pub restarts: u32,
    /// Whether enforcement flagged anything: restarts, halt, penalties,
    /// or authentication failures.
    pub detected: bool,
    /// Penalties charged per node.
    pub penalties: Vec<Money>,
    /// Simulator traffic statistics for the whole lifecycle.
    pub stats: NetStats,
    /// Whether the event budget truncated the run.
    pub truncated: bool,
}

impl FaithfulSim {
    /// A simulation over a biconnected topology.
    ///
    /// # Panics
    ///
    /// Panics if the topology is not biconnected or arities mismatch.
    pub fn new(topo: Topology, true_costs: CostVector, traffic: TrafficMatrix) -> Self {
        assert!(topo.is_biconnected(), "FPSS requires a biconnected graph");
        assert_eq!(topo.num_nodes(), true_costs.len(), "cost arity");
        FaithfulSim {
            topo,
            true_costs,
            traffic,
            settlement: SettlementConfig::default(),
            progress_value: Money::new(1_000_000),
            epsilon: Money::new(1),
            max_restarts: 2,
            latency_micros: 10,
            max_events: 10_000_000,
            bank_secret: b"specfaith-bank-secret".to_vec(),
        }
    }

    /// Overrides the settlement config (per-packet value `W`).
    #[must_use]
    pub fn with_settlement(mut self, settlement: SettlementConfig) -> Self {
        self.settlement = settlement;
        self
    }

    /// Overrides the progress value `V`.
    #[must_use]
    pub fn with_progress_value(mut self, value: Money) -> Self {
        self.progress_value = value;
        self
    }

    /// Overrides the restart budget.
    #[must_use]
    pub fn with_max_restarts(mut self, max_restarts: u32) -> Self {
        self.max_restarts = max_restarts;
        self
    }

    /// Overrides the event budget.
    #[must_use]
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Runs with everyone faithful.
    pub fn run_faithful(&self, seed: u64) -> FaithfulRunResult {
        self.run_with(|_| Box::new(Faithful), seed)
    }

    /// Runs with `deviant` playing `strategy`, everyone else faithful.
    pub fn run_with_deviant(
        &self,
        deviant: NodeId,
        strategy: Box<dyn RationalStrategy>,
        seed: u64,
    ) -> FaithfulRunResult {
        let mut strategy = Some(strategy);
        self.run_with(
            move |node| {
                if node == deviant {
                    strategy.take().expect("deviant strategy used once")
                } else {
                    Box::new(Faithful)
                }
            },
            seed,
        )
    }

    /// Runs with an arbitrary strategy assignment.
    pub fn run_with(
        &self,
        mut strategies: impl FnMut(NodeId) -> Box<dyn RationalStrategy>,
        seed: u64,
    ) -> FaithfulRunResult {
        let n = self.topo.num_nodes();
        let bank_id = NodeId::from_index(n);
        let max_hops = (4 * n) as u32;
        let neighbor_map: BTreeMap<NodeId, Vec<NodeId>> = self
            .topo
            .nodes()
            .map(|v| (v, self.topo.neighbors(v).to_vec()))
            .collect();

        let mut actors: Vec<NodeOrBank> = self
            .topo
            .nodes()
            .map(|me| {
                NodeOrBank::Node(Box::new(FaithfulNode::new(
                    me,
                    self.topo.neighbors(me).to_vec(),
                    neighbor_map.clone(),
                    self.true_costs.cost(me),
                    strategies(me),
                    bank_id,
                    specfaith_crypto::auth::ChannelKey::derive(&self.bank_secret, me.raw()),
                    max_hops,
                )))
            })
            .collect();
        actors.push(NodeOrBank::Bank(Box::new(BankNode::new(
            self.topo.clone(),
            &self.bank_secret,
            self.max_restarts,
            self.epsilon,
        ))));

        // Queue execution traffic up front; nodes send it on green light.
        for flow in self.traffic.flows() {
            actors[flow.src.index()]
                .node_mut()
                .add_traffic(flow.dst, flow.packets);
        }

        let mut net = Network::new(
            Connectivity::from_topology_with_overlay(&self.topo, 1),
            actors,
            FixedLatency::new(self.latency_micros),
            seed,
        )
        .with_max_events(self.max_events);

        let outcome = net.run();

        let bank = net.node(bank_id).bank();
        let green_lighted = bank.green_lighted();
        let halted = bank.halted();
        let restarts = bank.restarts();
        let mut auth_failures = bank.auth_failures();
        for id in self.topo.nodes() {
            auth_failures += net.node(id).node().auth_failures();
        }

        let (utilities, penalties) = match (green_lighted, bank.outcome()) {
            (true, Some(settlement)) => {
                let mut utilities = Vec::with_capacity(n);
                for id in self.topo.nodes() {
                    let node = net.node(id).node();
                    let delivered = settlement.delivered_by_src[id.index()] as i64;
                    let transit_cost = Money::new(self.true_costs.cost(id).value() as i64)
                        .scale(node.carried() as i64);
                    let u = self.settlement.per_packet_value.scale(delivered)
                        + settlement.transfers[id.index()]
                        - settlement.penalties[id.index()]
                        - transit_cost
                        + self.progress_value;
                    utilities.push(u);
                }
                (utilities, settlement.penalties.clone())
            }
            // Halted (or still unsettled): nobody progresses, nobody gains.
            _ => (vec![Money::ZERO; n], vec![Money::ZERO; n]),
        };

        let detected = restarts > 0
            || halted
            || auth_failures > 0
            || penalties.iter().any(|p| p.is_positive());

        FaithfulRunResult {
            utilities,
            green_lighted,
            halted,
            restarts,
            detected,
            penalties,
            stats: net.stats().clone(),
            truncated: outcome.truncated,
        }
    }

    /// The deviation specs of the standard catalog (tagged with phases).
    pub fn catalog_specs(&self) -> Vec<DeviationSpec> {
        standard_catalog(NodeId::new(0))
            .iter()
            .map(|s| s.spec())
            .collect()
    }

    /// The Theorem-1 sweep on this instance: plays the faithful profile,
    /// then every `(node, deviation)` pair from the standard catalog, and
    /// returns the equilibrium report (profitability + detection per
    /// deviation).
    pub fn equilibrium_report(&self, seed: u64) -> EquilibriumReport {
        let n = self.topo.num_nodes();
        let specs = self.catalog_specs();
        test_deviations(n, &specs, |deviation| match deviation {
            None => {
                let run = self.run_faithful(seed);
                (run.utilities, run.detected)
            }
            Some((agent, spec)) => {
                let agent_id = NodeId::from_index(agent);
                // Forged pricing tags use the deviant's own id: a node is
                // never its own checker, so the tag is guaranteed invalid.
                let strategy = standard_catalog(agent_id)
                    .into_iter()
                    .find(|s| s.spec().name() == spec.name())
                    .expect("spec names are stable");
                let run = self.run_with_deviant(agent_id, strategy, seed);
                (run.utilities, run.detected)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfaith_fpss::deviation::{
        DeflateOwnPricing, DropCheckerForwards, DropTransitPackets, SpoofShortRoutes,
        UnderreportPayments,
    };
    use specfaith_fpss::pricing::expected_tables;
    use specfaith_fpss::traffic::Flow;
    use specfaith_graph::generators::figure1;

    fn figure1_sim() -> (specfaith_graph::generators::Figure1, FaithfulSim) {
        let net = figure1();
        let traffic = TrafficMatrix::from_flows(vec![
            Flow {
                src: net.x,
                dst: net.z,
                packets: 5,
            },
            Flow {
                src: net.d,
                dst: net.z,
                packets: 5,
            },
            Flow {
                src: net.z,
                dst: net.x,
                packets: 3,
            },
        ]);
        let sim = FaithfulSim::new(net.topology.clone(), net.costs.clone(), traffic);
        (net, sim)
    }

    #[test]
    fn faithful_run_green_lights_without_restarts() {
        let (_, sim) = figure1_sim();
        let run = sim.run_faithful(1);
        assert!(run.green_lighted, "honest construction certifies");
        assert!(!run.halted);
        assert_eq!(run.restarts, 0);
        assert!(!run.detected);
        assert!(!run.truncated);
    }

    #[test]
    fn faithful_utilities_are_strictly_positive() {
        // Required for halting to be a real punishment: every node must
        // strictly prefer the mechanism completing.
        let (_, sim) = figure1_sim();
        let run = sim.run_faithful(1);
        for (i, u) in run.utilities.iter().enumerate() {
            assert!(u.is_positive(), "node {i} has utility {u}");
        }
    }

    #[test]
    fn faithful_nodes_converge_to_vcg_tables() {
        let (net, sim) = figure1_sim();
        // Re-run manually to inspect node state.
        let run = sim.run_faithful(1);
        assert!(run.green_lighted);
        let reference = expected_tables(&net.topology, &net.costs);
        // The faithful run's tables are checked indirectly by the bank
        // (hash equality across principal and checkers); sanity-check one
        // payment figure: X pays C p^C per packet, 5 packets.
        let p_c = specfaith_fpss::pricing::vcg_payment(&net.topology, &net.costs, net.x, net.z, net.c)
            .expect("C on X→Z LCP");
        let _ = reference;
        assert!(p_c.is_positive());
    }

    #[test]
    fn construction_deviations_are_caught_and_halt() {
        let (net, sim) = figure1_sim();
        for (name, strategy) in [
            (
                "spoof-short-routes",
                Box::new(SpoofShortRoutes) as Box<dyn RationalStrategy>,
            ),
            (
                "deflate-own-pricing",
                Box::new(DeflateOwnPricing { keep_percent: 50 }),
            ),
            ("drop-checker-forwards", Box::new(DropCheckerForwards)),
        ] {
            let run = sim.run_with_deviant(net.c, strategy, 1);
            assert!(run.detected, "{name} must be detected");
            assert!(
                !run.green_lighted,
                "{name}: corrupted construction must never green-light"
            );
            assert!(run.halted, "{name}: persistent deviant halts mechanism");
            assert!(run.restarts > 0, "{name}: bank retried before halting");
        }
    }

    #[test]
    fn construction_deviations_are_strictly_unprofitable() {
        let (net, sim) = figure1_sim();
        let faithful = sim.run_faithful(1);
        let run = sim.run_with_deviant(net.c, Box::new(SpoofShortRoutes), 1);
        assert!(
            run.utilities[net.c.index()] < faithful.utilities[net.c.index()],
            "halting forfeits the progress value"
        );
    }

    #[test]
    fn execution_deviations_are_penalized_into_unprofitability() {
        let (net, sim) = figure1_sim();
        let faithful = sim.run_faithful(1);

        // Payment fraud: caught by reconciliation, penalty ε-above.
        let fraud = sim.run_with_deviant(
            net.x,
            Box::new(UnderreportPayments { keep_percent: 10 }),
            1,
        );
        assert!(fraud.green_lighted, "construction was honest");
        assert!(fraud.detected);
        assert!(fraud.penalties[net.x.index()].is_positive());
        assert!(
            fraud.utilities[net.x.index()] < faithful.utilities[net.x.index()],
            "underreporting strictly loses: {} vs {}",
            fraud.utilities[net.x.index()],
            faithful.utilities[net.x.index()]
        );

        // Packet dropping: caught by flow conservation.
        let drop = sim.run_with_deviant(net.c, Box::new(DropTransitPackets), 1);
        assert!(drop.detected);
        assert!(drop.penalties[net.c.index()].is_positive());
        assert!(
            drop.utilities[net.c.index()] < faithful.utilities[net.c.index()],
            "dropping strictly loses: {} vs {}",
            drop.utilities[net.c.index()],
            faithful.utilities[net.c.index()]
        );
    }

    #[test]
    fn figure1_catalog_sweep_is_ex_post_nash() {
        let (_, sim) = figure1_sim();
        let report = sim.equilibrium_report(1);
        assert!(report.is_ex_post_nash(), "{report}");
        assert!(report.strong_cc_holds());
        assert!(report.strong_ac_holds());
        assert!(report.ic_holds());
    }
}
