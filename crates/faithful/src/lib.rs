//! # specfaith-faithful
//!
//! The faithful extension of FPSS from §4.2–4.3 of Shneidman & Parkes
//! (PODC 2004): the specification that remains an **ex post Nash
//! equilibrium** even when every node would deviate if deviation paid.
//!
//! ## The construction
//!
//! * **Checker nodes.** Every neighbor of a node is a checker for that
//!   node (the node being checked is the *principal*). A checker keeps a
//!   full **mirror** of its principal's state — DATA1, recomputed DATA2 and
//!   DATA3*, and the principal's *announced* tables — rebuilt from (a) the
//!   messages the checker itself sent the principal and (b) forwarded
//!   copies of everything the principal received from other neighbors
//!   (\[PRINC1\]/\[PRINC2\] forwarding, \[CHECK1\]/\[CHECK2\] verification).
//! * **The bank.** A trusted, obedient checkpointing entity. At network
//!   quiescence it collects signed table hashes from every principal and
//!   every checker mirror (\[BANK1\] routing, \[BANK2\] pricing incl. identity
//!   tags); any mismatch restarts the phase (bounded restarts, then halt —
//!   the "mechanism does not progress" penalty). After green-lighting
//!   execution it reconciles payment reports against checker observations
//!   and charges **ε-above-the-deviation** penalties.
//! * **Signed channels.** All node↔bank traffic is MAC-authenticated with
//!   per-node keys ([`specfaith_crypto`]), making tampering and replay
//!   detectable (communication compatibility for bank messages).
//!
//! ## Crate layout
//!
//! * [`codec`] — canonical byte encoding of bank payloads (what the MACs
//!   sign).
//! * [`checker`] — the per-principal mirror state.
//! * [`node`] — the faithful node actor (principal + checker roles +
//!   deviation strategy hooks).
//! * [`bank`] — the bank actor: checkpointing, restart policy, execution
//!   settlement.
//! * [`actor`] — the heterogeneous node/bank wrapper for the simulator.
//! * [`harness`] — one-call faithful runs and the deviation-sweep
//!   experiment that certifies Theorem 1 empirically.
//! * [`metrics`] — plain-vs-faithful overhead accounting (experiment E8).
//! * [`penalty`] — the ε-above penalty policy and its calibration
//!   analysis (experiment E10).
//!
//! # Example
//!
//! ```
//! use specfaith_faithful::harness::{run_faithful_honest, FaithfulConfig};
//! use specfaith_fpss::traffic::TrafficMatrix;
//! use specfaith_graph::generators::figure1;
//!
//! let net = figure1();
//! let config = FaithfulConfig::new(
//!     net.topology.clone(),
//!     net.costs.clone(),
//!     TrafficMatrix::single(net.x, net.z, 5),
//! );
//! let run = run_faithful_honest(&config, 7);
//! assert!(run.green_lighted && !run.detected);
//! ```

pub mod actor;
pub mod bank;
pub mod checker;
pub mod codec;
pub mod election;
pub mod harness;
pub mod metrics;
pub mod node;
pub mod penalty;

pub use bank::BankNode;
#[allow(deprecated)]
pub use harness::FaithfulSim;
pub use harness::{run_faithful, run_faithful_honest, run_faithful_with_deviant};
pub use harness::{FaithfulConfig, FaithfulRunResult};
pub use node::FaithfulNode;
