//! The paper's §3 leader election as a **distributed** faithful mechanism.
//!
//! The motivating story: a designer wants the most capable node elected to
//! run a CPU-intensive task, but truthfully revealing capability risks
//! being tasked with the chore, so rational nodes lie and the naive
//! protocol elects the wrong leader.
//!
//! The faithful version applies the same toolkit as the FPSS extension,
//! scaled down:
//!
//! * **Incentives** — the election is a Vickrey procurement: declare your
//!   cost of serving; cheapest node wins and is paid the second-lowest
//!   declaration (truthful declaration is dominant).
//! * **Redundancy** — declarations are flooded, and *every* node computes
//!   the outcome; nobody is trusted to tally alone.
//! * **Catch-and-punish** — each node reports its signed `(winner, price)`
//!   to the bank; any disagreement halts the mechanism (no progress, no
//!   progress value for anyone).
//!
//! This module exists to show the framework generalizes beyond routing
//! with the same crates: `netsim` for the substrate, `crypto` for the
//! signed reports, `core` for the equilibrium analysis.

use specfaith_core::id::NodeId;
use specfaith_core::money::Money;
use specfaith_crypto::auth::{Authenticated, ChannelKey};
use specfaith_graph::topology::Topology;
use specfaith_netsim::{Actor, Connectivity, Ctx, FixedLatency, Network, Payload};
use std::collections::BTreeMap;
use std::fmt;

/// Messages of the distributed election.
#[derive(Clone, Debug)]
pub enum ElectMsg {
    /// Flooded declaration of a node's cost of serving as leader.
    Declare {
        /// The declaring node.
        origin: NodeId,
        /// Its declared serving cost.
        cost: Money,
    },
    /// A MAC'd `(winner, price)` outcome report to the bank.
    Outcome(Authenticated),
}

impl Payload for ElectMsg {
    fn size_bytes(&self) -> usize {
        match self {
            ElectMsg::Declare { .. } => 12,
            ElectMsg::Outcome(env) => 44 + env.payload.len(),
        }
    }
}

/// The deviation hooks of an election participant.
pub trait ElectionStrategy: fmt::Debug {
    /// The cost to declare (information revelation).
    fn declare(&mut self, true_cost: Money) -> Money {
        true_cost
    }

    /// How to re-flood another node's declaration (message passing).
    fn reflood(&mut self, _origin: NodeId, cost: Money) -> Option<Money> {
        Some(cost)
    }

    /// The `(winner, price)` to report after honest tallying
    /// (computation).
    fn report(&mut self, honest: (NodeId, Money)) -> (NodeId, Money) {
        honest
    }
}

/// The faithful election strategy.
#[derive(Clone, Debug, Default)]
pub struct HonestVoter;

impl ElectionStrategy for HonestVoter {}

fn encode_outcome(winner: NodeId, price: Money) -> Vec<u8> {
    let mut bytes = winner.raw().to_be_bytes().to_vec();
    bytes.extend_from_slice(&price.value().to_be_bytes());
    bytes
}

fn decode_outcome(bytes: &[u8]) -> Option<(NodeId, Money)> {
    if bytes.len() != 12 {
        return None;
    }
    let winner = u32::from_be_bytes(bytes[..4].try_into().ok()?);
    let price = i64::from_be_bytes(bytes[4..].try_into().ok()?);
    Some((NodeId::new(winner), Money::new(price)))
}

/// One election participant.
pub struct Voter {
    me: NodeId,
    neighbors: Vec<NodeId>,
    n: usize,
    true_cost: Money,
    strategy: Box<dyn ElectionStrategy>,
    declared: BTreeMap<NodeId, Money>,
    bank: NodeId,
    key: ChannelKey,
    seq: u64,
    reported: bool,
}

impl fmt::Debug for Voter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Voter({})", self.me)
    }
}

impl Voter {
    /// Tallies the Vickrey outcome from the declarations seen so far.
    fn tally(&self) -> Option<(NodeId, Money)> {
        if self.declared.len() < self.n {
            return None;
        }
        let mut ranked: Vec<(Money, NodeId)> =
            self.declared.iter().map(|(&id, &c)| (c, id)).collect();
        ranked.sort();
        let (_, winner) = ranked[0];
        let (second_price, _) = ranked[1];
        Some((winner, second_price))
    }
}

impl Actor for Voter {
    type Msg = ElectMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, ElectMsg>) {
        let declared = self.strategy.declare(self.true_cost);
        self.declared.insert(self.me, declared);
        for &b in &self.neighbors {
            ctx.send(
                b,
                ElectMsg::Declare {
                    origin: self.me,
                    cost: declared,
                },
            );
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, ElectMsg>, from: NodeId, msg: ElectMsg) {
        let ElectMsg::Declare { origin, cost } = msg else {
            return; // outcome reports are for the bank only
        };
        if self.declared.contains_key(&origin) {
            return;
        }
        self.declared.insert(origin, cost);
        if let Some(reflooded) = self.strategy.reflood(origin, cost) {
            for &b in &self.neighbors {
                if b != from {
                    ctx.send(
                        b,
                        ElectMsg::Declare {
                            origin,
                            cost: reflooded,
                        },
                    );
                }
            }
        }
        if !self.reported {
            if let Some(honest) = self.tally() {
                self.reported = true;
                let (winner, price) = self.strategy.report(honest);
                self.seq += 1;
                let env = self.key.seal(self.seq, encode_outcome(winner, price));
                ctx.send(self.bank, ElectMsg::Outcome(env));
            }
        }
    }
}

/// The election bank: collects signed outcome reports and certifies the
/// election iff all agree.
#[derive(Debug)]
pub struct ElectionBank {
    n: usize,
    keys: Vec<ChannelKey>,
    last_seq: Vec<u64>,
    reports: BTreeMap<NodeId, (NodeId, Money)>,
    auth_failures: u64,
}

impl ElectionBank {
    fn new(n: usize, secret: &[u8]) -> Self {
        ElectionBank {
            n,
            keys: (0..n as u32)
                .map(|i| ChannelKey::derive(secret, i))
                .collect(),
            last_seq: vec![0; n],
            reports: BTreeMap::new(),
            auth_failures: 0,
        }
    }

    /// The certified outcome: `Some((winner, price))` iff every node
    /// reported and all reports agree.
    pub fn certified(&self) -> Option<(NodeId, Money)> {
        if self.reports.len() < self.n {
            return None;
        }
        let mut values = self.reports.values();
        let first = *values.next().expect("n >= 1 reports");
        values.all(|v| *v == first).then_some(first)
    }
}

impl Actor for ElectionBank {
    type Msg = ElectMsg;

    fn on_message(&mut self, _ctx: &mut Ctx<'_, ElectMsg>, _from: NodeId, msg: ElectMsg) {
        let ElectMsg::Outcome(env) = msg else {
            self.auth_failures += 1;
            return;
        };
        let sender = env.sender as usize;
        if sender >= self.keys.len() {
            self.auth_failures += 1;
            return;
        }
        match self.keys[sender].open(&env, self.last_seq[sender]) {
            Ok(bytes) => {
                self.last_seq[sender] = env.sequence;
                if let Some(outcome) = decode_outcome(&bytes) {
                    self.reports.insert(NodeId::new(env.sender), outcome);
                } else {
                    self.auth_failures += 1;
                }
            }
            Err(_) => self.auth_failures += 1,
        }
    }
}

enum Participant {
    Voter(Box<Voter>),
    Bank(Box<ElectionBank>),
}

impl Actor for Participant {
    type Msg = ElectMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, ElectMsg>) {
        if let Participant::Voter(v) = self {
            v.on_start(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, ElectMsg>, from: NodeId, msg: ElectMsg) {
        match self {
            Participant::Voter(v) => v.on_message(ctx, from, msg),
            Participant::Bank(b) => b.on_message(ctx, from, msg),
        }
    }
}

/// Result of a distributed election run.
#[derive(Clone, Debug)]
pub struct ElectionResult {
    /// The certified `(winner, second price)`, or `None` if the bank
    /// refused (disagreeing or missing reports).
    pub outcome: Option<(NodeId, Money)>,
    /// Realized utility per node: progress value, plus `price − true
    /// cost` for the leader; all zero when the election halts.
    pub utilities: Vec<Money>,
}

/// A distributed Vickrey leader election over a topology.
#[derive(Clone, Debug)]
pub struct ElectionSim {
    topo: Topology,
    true_costs: Vec<Money>,
    progress_value: Money,
}

impl ElectionSim {
    /// An election among the nodes of `topo` (connected; `n ≥ 2`) with the
    /// given true serving costs.
    ///
    /// # Panics
    ///
    /// Panics if arities mismatch or the topology is disconnected.
    pub fn new(topo: Topology, true_costs: Vec<Money>) -> Self {
        assert_eq!(topo.num_nodes(), true_costs.len(), "cost arity");
        assert!(topo.is_connected(), "the flood needs a connected graph");
        assert!(topo.num_nodes() >= 2, "an election needs two candidates");
        ElectionSim {
            topo,
            true_costs,
            progress_value: Money::new(1_000),
        }
    }

    /// Runs with everyone honest.
    pub fn run_honest(&self, seed: u64) -> ElectionResult {
        self.run_with(|_| Box::new(HonestVoter), seed)
    }

    /// Runs with one deviant.
    pub fn run_with_deviant(
        &self,
        deviant: NodeId,
        strategy: Box<dyn ElectionStrategy>,
        seed: u64,
    ) -> ElectionResult {
        let mut strategy = Some(strategy);
        self.run_with(
            move |node| {
                if node == deviant {
                    strategy.take().expect("used once")
                } else {
                    Box::new(HonestVoter)
                }
            },
            seed,
        )
    }

    /// Runs with an arbitrary strategy assignment.
    pub fn run_with(
        &self,
        mut strategies: impl FnMut(NodeId) -> Box<dyn ElectionStrategy>,
        seed: u64,
    ) -> ElectionResult {
        let n = self.topo.num_nodes();
        let bank_id = NodeId::from_index(n);
        let secret = b"election-bank-secret";
        let mut actors: Vec<Participant> = self
            .topo
            .nodes()
            .map(|me| {
                Participant::Voter(Box::new(Voter {
                    me,
                    neighbors: self.topo.neighbors(me).to_vec(),
                    n,
                    true_cost: self.true_costs[me.index()],
                    strategy: strategies(me),
                    declared: BTreeMap::new(),
                    bank: bank_id,
                    key: ChannelKey::derive(secret, me.raw()),
                    seq: 0,
                    reported: false,
                }))
            })
            .collect();
        actors.push(Participant::Bank(Box::new(ElectionBank::new(n, secret))));
        let mut net = Network::new(
            Connectivity::from_topology_with_overlay(&self.topo, 1),
            actors,
            FixedLatency::new(10),
            seed,
        );
        net.run();
        let bank = match net.node(bank_id) {
            Participant::Bank(b) => b,
            Participant::Voter(_) => unreachable!("last actor is the bank"),
        };
        let outcome = bank.certified();
        let utilities = match outcome {
            Some((winner, price)) => self
                .topo
                .nodes()
                .map(|id| {
                    let serving = if id == winner {
                        price - self.true_costs[id.index()]
                    } else {
                        Money::ZERO
                    };
                    serving + self.progress_value
                })
                .collect(),
            None => vec![Money::ZERO; n],
        };
        ElectionResult { outcome, utilities }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specfaith_graph::generators::ring;

    /// Over-declare to dodge the chore (the paper's anecdote).
    #[derive(Debug)]
    struct DodgeChore;
    impl ElectionStrategy for DodgeChore {
        fn declare(&mut self, true_cost: Money) -> Money {
            true_cost + Money::new(50)
        }
    }

    /// Report a self-serving outcome: "I won at a fat price".
    #[derive(Debug)]
    struct RigTally {
        me: NodeId,
    }
    impl ElectionStrategy for RigTally {
        fn report(&mut self, honest: (NodeId, Money)) -> (NodeId, Money) {
            (self.me, honest.1 + Money::new(100))
        }
    }

    /// Tamper with re-flooded declarations.
    #[derive(Debug)]
    struct InflateOthers;
    impl ElectionStrategy for InflateOthers {
        fn reflood(&mut self, _origin: NodeId, cost: Money) -> Option<Money> {
            Some(cost + Money::new(100))
        }
    }

    fn sim() -> ElectionSim {
        // Ring of 5; node 2 is cheapest (most powerful), node 0 second.
        ElectionSim::new(
            ring(5),
            vec![
                Money::new(20),
                Money::new(40),
                Money::new(10),
                Money::new(35),
                Money::new(60),
            ],
        )
    }

    #[test]
    fn honest_election_certifies_the_vickrey_outcome() {
        let result = sim().run_honest(1);
        assert_eq!(result.outcome, Some((NodeId::new(2), Money::new(20))));
        // The leader is compensated above its true cost.
        assert!(result.utilities[2] > result.utilities[0]);
        assert!(result.utilities.iter().all(|u| u.is_positive()));
    }

    #[test]
    fn dodging_the_chore_does_not_pay() {
        let s = sim();
        let honest = s.run_honest(1);
        // The would-be winner over-declares to dodge; it loses the payment
        // above cost it would have earned.
        let dodged = s.run_with_deviant(NodeId::new(2), Box::new(DodgeChore), 1);
        assert_eq!(
            dodged.outcome,
            Some((NodeId::new(0), Money::new(35))),
            "the chore falls to the runner-up"
        );
        assert!(
            dodged.utilities[2] <= honest.utilities[2],
            "Vickrey compensation makes serving worthwhile"
        );
        // A loser over-declaring changes nothing at all.
        let futile = s.run_with_deviant(NodeId::new(4), Box::new(DodgeChore), 1);
        assert_eq!(futile.outcome, honest.outcome);
    }

    #[test]
    fn rigged_tally_is_caught_by_report_comparison() {
        let s = sim();
        let rigged =
            s.run_with_deviant(NodeId::new(3), Box::new(RigTally { me: NodeId::new(3) }), 1);
        assert_eq!(
            rigged.outcome, None,
            "disagreeing reports halt the election"
        );
        assert!(rigged.utilities.iter().all(|u| *u == Money::ZERO));
        let honest = s.run_honest(1);
        assert!(
            rigged.utilities[3] < honest.utilities[3],
            "rigging forfeits the progress value"
        );
    }

    #[test]
    fn tampered_flood_is_caught_by_report_comparison() {
        // Inflating others' declarations poisons the tamperer's side of
        // the ring; tallies disagree and the bank refuses to certify.
        let s = sim();
        let tampered = s.run_with_deviant(NodeId::new(1), Box::new(InflateOthers), 1);
        assert_eq!(tampered.outcome, None);
        let honest = s.run_honest(1);
        assert!(tampered.utilities[1] < honest.utilities[1]);
    }

    #[test]
    fn outcome_codec_roundtrips() {
        let bytes = encode_outcome(NodeId::new(7), Money::new(-3));
        assert_eq!(
            decode_outcome(&bytes),
            Some((NodeId::new(7), Money::new(-3)))
        );
        assert_eq!(decode_outcome(&bytes[..5]), None);
    }

    #[test]
    fn underdeclaring_to_win_is_a_losing_trade() {
        #[derive(Debug)]
        struct BuyTheChore;
        impl ElectionStrategy for BuyTheChore {
            fn declare(&mut self, true_cost: Money) -> Money {
                true_cost - Money::new(15)
            }
        }
        let s = sim();
        let honest = s.run_honest(1);
        // Node 0 (true 20) underdeclares to 5, beats node 2's 10, wins at
        // second price 10 — and serves at a loss of 10.
        let bought = s.run_with_deviant(NodeId::new(0), Box::new(BuyTheChore), 1);
        assert_eq!(bought.outcome, Some((NodeId::new(0), Money::new(10))));
        assert!(
            bought.utilities[0] < honest.utilities[0],
            "winning below cost strictly loses"
        );
    }
}
