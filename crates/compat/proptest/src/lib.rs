//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The workspace builds without crates.io access, so the `proptest`
//! dependency name is path-replaced to this crate. It covers the subset
//! the workspace's property tests use: the [`proptest!`] macro with
//! `arg in strategy` bindings and an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` inner attribute,
//! integer-range and tuple strategies, [`collection::vec`], [`any`],
//! [`Strategy::prop_map`], and the `prop_assert*` macros.
//!
//! Cases are generated from a fixed-seed deterministic RNG, so failures
//! reproduce exactly. There is **no shrinking**: a failing case reports
//! its values via the assertion message and stops.

use rand::rngs::StdRng;
use rand::Rng;

/// Error carried out of a failing property body.
pub type TestCaseError = String;

/// Per-test configuration (only the case count here).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<F, R>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> R,
    {
        Map { inner: self, map }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, F, R> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> R,
{
    type Value = R;

    fn generate(&self, rng: &mut StdRng) -> R {
        (self.map)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (S0 / 0, S1 / 1),
    (S0 / 0, S1 / 1, S2 / 2),
    (S0 / 0, S1 / 1, S2 / 2, S3 / 3),
);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

/// Marker strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies (only `vec` here).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Strategy for `Vec`s with element strategy `element` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// The [`vec()`] strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the `proptest!` test bodies need in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[doc(hidden)]
pub mod runtime {
    use rand::SeedableRng;

    pub use rand::rngs::StdRng;

    /// Runs `cases` generated cases of `body`, panicking (with the case
    /// index for reproduction) on the first failure.
    pub fn run_cases(
        cases: u32,
        mut body: impl FnMut(&mut StdRng) -> Result<(), crate::TestCaseError>,
    ) {
        // Fixed seed: deterministic across runs, distinct per case.
        let mut rng = StdRng::seed_from_u64(0x9E37_79B9_7F4A_7C15);
        for case in 0..cases {
            if let Err(message) = body(&mut rng) {
                panic!("proptest case {case}/{cases} failed: {message}");
            }
        }
    }
}

/// Declares deterministic property tests; see the crate docs for the
/// supported grammar.
#[macro_export]
macro_rules! proptest {
    (@tests ($config:expr) $(
        $(#[doc = $doc:expr])*
        #[test]
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[doc = $doc])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::runtime::run_cases(config.cases, |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), __proptest_rng);)+
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
    )*};
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Skips the case when the assumption does not hold. Real proptest
/// rejects and redraws; this stand-in simply treats the case as passing,
/// which preserves soundness (never hides a failure) at some coverage
/// cost.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

/// Asserts a condition inside a property body, failing the case (not
/// panicking) so the runner can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..9, y in 0i64..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0..=4).contains(&y));
        }

        #[test]
        fn tuples_and_vecs_compose(
            pair in (any::<u32>(), 0u8..4),
            bytes in crate::collection::vec(any::<u8>(), 0..16),
        ) {
            prop_assert!(pair.1 < 4);
            prop_assert!(bytes.len() < 16);
        }

        #[test]
        fn prop_map_applies(doubled in (1u32..50).prop_map(|v| v * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert_ne!(doubled, 1);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_reports_index() {
        crate::runtime::run_cases(8, |_rng| Err("boom".to_string()));
    }
}
