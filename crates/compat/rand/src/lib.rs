//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in environments with no access to crates.io, so
//! the `rand` dependency name is path-replaced to this crate (see the
//! workspace `Cargo.toml`). It implements exactly the 0.8-era API subset
//! the workspace uses:
//!
//! * [`Rng::gen_range`] over `Range`/`RangeInclusive` of the primitive
//!   integer types,
//! * [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`],
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! The generator is xorshift128+ seeded through SplitMix64. Streams are
//! **deterministic per seed** — the property every experiment in this
//! workspace relies on — but are *not* bit-compatible with upstream
//! `StdRng`; seeds choose different (equally arbitrary) instances.

/// A source of random 64-bit words. The only required method is
/// [`RngCore::next_u64`]; everything else derives from it.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (the upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Integer types uniformly samplable by [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform draw from `lo..=hi`.
    fn sample_inclusive<G: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut G) -> Self;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<G: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut G) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as u128) - (lo as u128) + 1;
                let draw = (rng.next_u64() as u128) % span;
                lo + draw as $t
            }
        }
    )*};
}

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<G: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut G) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as i128) - (lo as i128) + 1;
                let draw = (rng.next_u64() as u128 % span as u128) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_unsigned!(u8, u16, u32, u64, usize);
impl_sample_signed!(i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`]: `lo..hi` and `lo..=hi`.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform + One> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_inclusive(self.start, self.end.minus_one(), rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Internal helper: `x - 1` for turning half-open bounds inclusive.
pub trait One {
    /// `self - 1`.
    fn minus_one(self) -> Self;
}

macro_rules! impl_one {
    ($($t:ty),*) => {$(
        impl One for $t {
            fn minus_one(self) -> Self { self - 1 }
        }
    )*};
}

impl_one!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// A generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators (only [`rngs::StdRng`] here).
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xorshift128+
    /// seeded via SplitMix64.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s0: u64,
        s1: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s0 = splitmix64(&mut sm);
            let mut s1 = splitmix64(&mut sm);
            if s0 == 0 && s1 == 0 {
                s1 = 1; // xorshift must not start at the all-zero state
            }
            StdRng { s0, s1 }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.s0;
            let y = self.s1;
            self.s0 = y;
            x ^= x << 23;
            self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
            self.s1.wrapping_add(y)
        }
    }
}

/// Slice sampling and shuffling.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle, in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_seed_deterministic() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..32)
                .map(|_| rng.gen_range(0..1000u64))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!((0..10).contains(&rng.gen_range(0..10i64)));
            assert!((5..=9).contains(&rng.gen_range(5..=9u32)));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn signed_ranges_cover_negatives() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut saw_negative = false;
        for _ in 0..200 {
            let v = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&v));
            saw_negative |= v < 0;
        }
        assert!(saw_negative);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn full_width_draws_vary() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = [0u8; 0]; // touch choose on empty
        assert!(a.choose(&mut rng).is_none());
        let b = [1, 2, 3];
        assert!(b.contains(b.choose(&mut rng).unwrap()));
    }
}
