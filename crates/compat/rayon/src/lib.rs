//! Offline stand-in for [`rayon`](https://crates.io/crates/rayon).
//!
//! The workspace builds without crates.io access, so the `rayon`
//! dependency name is path-replaced to this crate. It implements the
//! subset the scenario sweep uses, with rayon's semantics:
//!
//! * `slice.par_iter().map(f).collect::<Vec<_>>()` — evaluates `f` on
//!   worker threads and collects **in input order** (rayon's indexed
//!   collect guarantee, which is what makes parallel sweeps byte-identical
//!   to serial ones);
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — bounds the fan-out
//!   width for code run inside `install`;
//! * [`current_num_threads`] and [`join`].
//!
//! Unlike real rayon there is no work-stealing deque: each `collect`
//! spawns scoped OS threads over contiguous chunks. For the coarse-grained
//! cells of a deviation sweep (each cell is a whole simulator run) this
//! costs nothing measurable; fine-grained workloads would want the real
//! crate.

use std::cell::Cell;
use std::fmt;
use std::num::NonZeroUsize;

thread_local! {
    /// Width installed by [`ThreadPool::install`]; 0 = not inside a pool.
    static INSTALLED_WIDTH: Cell<usize> = const { Cell::new(0) };
}

/// The number of threads parallel operations fan out to: the installed
/// pool width inside [`ThreadPool::install`], otherwise the machine's
/// available parallelism.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_WIDTH.with(Cell::get);
    if installed > 0 {
        installed
    } else {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Runs `a` and `b`, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        (a(), b())
    } else {
        std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            (ra, hb.join().expect("rayon-compat: join task panicked"))
        })
    }
}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type kept for API compatibility; building never fails here.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A builder with the default (machine-wide) width.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the pool width; 0 means the machine's available parallelism.
    #[must_use]
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A handle bounding the fan-out width of parallel operations run inside
/// [`ThreadPool::install`].
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's width installed: parallel operations
    /// inside `op` fan out to at most `num_threads` threads.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let width = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        INSTALLED_WIDTH.with(|w| {
            let prev = w.replace(width);
            let result = op();
            w.set(prev);
            result
        })
    }

    /// The pool's width.
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.num_threads
        }
    }
}

/// The traits user code imports via `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::iter::{IntoParallelRefIterator, ParallelSliceIter};
}

pub use iter::{IntoParallelRefIterator, ParMap, ParSliceIter};

/// Parallel iterator machinery (the slice → map → ordered-collect chain).
pub mod iter {
    use super::current_num_threads;

    /// `par_iter()` entry point, implemented for slices and `Vec`.
    pub trait IntoParallelRefIterator<'data> {
        /// The element type yielded by the parallel iterator.
        type Item: Sync + 'data;

        /// A parallel iterator over borrowed elements.
        fn par_iter(&'data self) -> ParSliceIter<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;

        fn par_iter(&'data self) -> ParSliceIter<'data, T> {
            ParSliceIter { slice: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;

        fn par_iter(&'data self) -> ParSliceIter<'data, T> {
            ParSliceIter { slice: self }
        }
    }

    /// A parallel iterator over a slice.
    #[derive(Debug)]
    pub struct ParSliceIter<'data, T> {
        slice: &'data [T],
    }

    /// Marker alias so `prelude::*` users see a trait name resembling
    /// rayon's `ParallelIterator` in docs.
    pub use ParSliceIter as ParallelSliceIter;

    impl<'data, T: Sync> ParSliceIter<'data, T> {
        /// Maps each element through `f` (evaluated on worker threads at
        /// collect time).
        pub fn map<F, R>(self, f: F) -> ParMap<'data, T, F>
        where
            F: Fn(&'data T) -> R + Sync,
            R: Send,
        {
            ParMap {
                slice: self.slice,
                f,
            }
        }

        /// The number of elements.
        pub fn len(&self) -> usize {
            self.slice.len()
        }

        /// Whether the underlying slice is empty.
        pub fn is_empty(&self) -> bool {
            self.slice.is_empty()
        }
    }

    /// The mapped parallel iterator; terminal [`ParMap::collect`] runs the
    /// closure across threads and reassembles results in input order.
    #[derive(Debug)]
    pub struct ParMap<'data, T, F> {
        slice: &'data [T],
        f: F,
    }

    impl<'data, T, F, R> ParMap<'data, T, F>
    where
        T: Sync,
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        /// Evaluates the map across up to [`current_num_threads`] scoped
        /// threads, preserving input order exactly (rayon's indexed
        /// collect guarantee).
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let threads = current_num_threads().clamp(1, self.slice.len().max(1));
            if threads <= 1 || self.slice.len() <= 1 {
                return self.slice.iter().map(&self.f).collect();
            }
            let chunk_len = self.slice.len().div_ceil(threads);
            let f = &self.f;
            let chunk_results: Vec<Vec<R>> = std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .slice
                    .chunks(chunk_len)
                    .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("rayon-compat: worker panicked"))
                    .collect()
            });
            chunk_results.into_iter().flatten().collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;

    #[test]
    fn ordered_collect_matches_serial_map() {
        let input: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = input.iter().map(|x| x * x).collect();
        let parallel: Vec<u64> = input.par_iter().map(|x| x * x).collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn install_bounds_width_and_restores() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let before = super::current_num_threads();
        let inside = pool.install(super::current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(super::current_num_threads(), before);
    }

    #[test]
    fn single_thread_pool_still_collects_in_order() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let input: Vec<i64> = (0..64).collect();
        let out: Vec<i64> = pool.install(|| input.par_iter().map(|x| -x).collect());
        assert_eq!(out, (0..64).map(|x| -x).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }
}
