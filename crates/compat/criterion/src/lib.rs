//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The workspace builds without crates.io access, so the `criterion`
//! dependency name is path-replaced to this crate. It supports the API
//! subset the workspace's benches use — `criterion_group!` /
//! `criterion_main!`, [`Criterion::bench_function`], benchmark groups with
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Throughput`]
//! and [`black_box`] — with honest (if statistically unsophisticated)
//! wall-clock measurement: warm-up, a calibrated iteration count, then
//! mean time per iteration over the sample budget, printed as plain text.
//!
//! Statistical niceties of real criterion (outlier rejection, regression
//! detection, HTML reports) are intentionally absent.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-exported so call sites can prevent dead-code elimination.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation: scales the report to per-byte / per-element
/// rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by its parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

/// Anything usable as a benchmark id (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Converts into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: Some(self.to_string()),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: Some(self),
            parameter: None,
        }
    }
}

fn render_id(group: Option<&str>, id: &BenchmarkId) -> String {
    let mut parts: Vec<&str> = Vec::new();
    if let Some(g) = group {
        parts.push(g);
    }
    if let Some(f) = id.function.as_deref() {
        parts.push(f);
    }
    if let Some(p) = id.parameter.as_deref() {
        parts.push(p);
    }
    parts.join("/")
}

/// Drives one benchmark's timing loop.
pub struct Bencher {
    mean: Option<Duration>,
    sample_budget: Duration,
}

impl Bencher {
    /// Times `routine`: warm-up, calibration, then mean wall-clock time
    /// per iteration over the sample budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and calibration: find an iteration count that takes a
        // measurable slice of the budget.
        let calibration_start = Instant::now();
        black_box(routine());
        let one = calibration_start.elapsed().max(Duration::from_nanos(20));
        let per_batch = (self.sample_budget.as_nanos() / 8).max(1);
        let batch = ((per_batch / one.as_nanos().max(1)) as u64).clamp(1, 1_000_000);

        let mut iters = 0u64;
        let measured_start = Instant::now();
        let mut elapsed;
        loop {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
            elapsed = measured_start.elapsed();
            if elapsed >= self.sample_budget {
                break;
            }
        }
        self.mean = Some(elapsed / (iters.max(1) as u32));
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

fn report(name: &str, mean: Duration, throughput: Option<Throughput>) {
    let mut line = format!("{name:<52} time: {:>12}", format_duration(mean));
    let secs = mean.as_secs_f64();
    if secs > 0.0 {
        match throughput {
            Some(Throughput::Bytes(bytes)) => {
                let rate = bytes as f64 / secs / (1024.0 * 1024.0);
                line.push_str(&format!("   thrpt: {rate:.1} MiB/s"));
            }
            Some(Throughput::Elements(elems)) => {
                let rate = elems as f64 / secs;
                line.push_str(&format!("   thrpt: {rate:.1} elem/s"));
            }
            None => {}
        }
    }
    println!("{line}");
}

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    sample_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; arguments are ignored.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Overrides the per-benchmark measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, budget: Duration) -> Self {
        self.sample_budget = budget;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut bencher = Bencher {
            mean: None,
            sample_budget: self.sample_budget,
        };
        f(&mut bencher);
        if let Some(mean) = bencher.mean {
            report(&render_id(None, &id), mean, None);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_budget: self.sample_budget,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_budget: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the sample budget already bounds
    /// measurement time here.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut bencher = Bencher {
            mean: None,
            sample_budget: self.sample_budget,
        };
        f(&mut bencher);
        if let Some(mean) = bencher.mean {
            report(&render_id(Some(&self.name), &id), mean, self.throughput);
        }
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id();
        let mut bencher = Bencher {
            mean: None,
            sample_budget: self.sample_budget,
        };
        f(&mut bencher, input);
        if let Some(mean) = bencher.mean {
            report(&render_id(Some(&self.name), &id), mean, self.throughput);
        }
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion {
            sample_budget: Duration::from_millis(5),
        };
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran > 0, "routine must actually run");
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion {
            sample_budget: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("group");
        group.sample_size(10);
        group.throughput(Throughput::Bytes(1024));
        group.bench_with_input(BenchmarkId::from_parameter(8), &8usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }

    #[test]
    fn id_rendering() {
        assert_eq!(render_id(Some("g"), &BenchmarkId::new("f", 32)), "g/f/32");
        assert_eq!(render_id(None, &"plain".into_benchmark_id()), "plain");
    }
}
