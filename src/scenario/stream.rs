//! Streaming service mode: a scenario as a resumable fixed point.
//!
//! [`Scenario::run`] treats a run as a one-shot batch: build the network,
//! converge, verify, execute, settle, throw everything away. A deployed
//! routing service does not work like that — the network converges
//! *once*, then absorbs a trickle of cost re-declarations and (under the
//! plain mechanism) node churn, each of which should cost incremental
//! work proportional to what actually changed, not a cold rebuild.
//!
//! [`Scenario::stream`] is that service mode. It checkpoints the scenario
//! at its converged fixed point, replays a caller-supplied sequence of
//! [`TopologyEvent`]s against the live network — each event re-converging
//! via the epoch-gated `CostUpdate` flood and destination-scoped
//! recomputes, with reference caches seeded from the previous fixed
//! point — and then releases execution-phase traffic against the final
//! tables. Every applied event is re-verified against the centralized
//! VCG reference (plain) or the bank's signed-hash recertification
//! (faithful), and the streamed tables are **byte-identical** to a cold
//! run on the updated topology — `tests/streaming_equivalence.rs` pins
//! that across generators and random event sequences.
//!
//! For event-at-a-time control (the benchmark's cold-vs-incremental
//! timing, or a long-lived service loop), use [`Scenario::stream_session`]
//! and drive the [`StreamSession`] directly.

use super::shard::fnv1a64;
use super::{EngineConfig, RunReport, Scenario};
use specfaith_crypto::sha256::Digest;
use specfaith_faithful::harness::{FaithfulEventStatus, FaithfulRunState};
use specfaith_fpss::deviation::Faithful;
use specfaith_fpss::runner::{EventStatus, PlainRunState};
use specfaith_graph::cache::CacheScope;
use specfaith_graph::costs::CostVector;
use specfaith_netsim::TopologyEvent;
use std::fmt;

/// How a streamed event landed, unified across mechanisms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamStatus {
    /// The event changed protocol state and the network re-converged.
    Applied,
    /// A link-latency change: absorbed by the transport, no protocol
    /// state to re-converge.
    LatencyOnly,
    /// Refused without touching the fixed point (unknown node, node
    /// already in that state, or a removal that would break
    /// biconnectivity).
    Rejected,
    /// Refused because the event class is outside the mechanism's
    /// streaming contract: partitions/heals under either mechanism, and
    /// *any* churn under the faithful mechanism, where a leaving node
    /// stalls the bank's signed-hash round forever (the paper's §4.2
    /// liveness assumption). Reported instead of hanging.
    Unsupported,
}

impl From<EventStatus> for StreamStatus {
    fn from(status: EventStatus) -> Self {
        match status {
            EventStatus::Applied => StreamStatus::Applied,
            EventStatus::LatencyOnly => StreamStatus::LatencyOnly,
            EventStatus::RejectedDown | EventStatus::RejectedNotBiconnected => {
                StreamStatus::Rejected
            }
            EventStatus::Unsupported => StreamStatus::Unsupported,
        }
    }
}

impl From<FaithfulEventStatus> for StreamStatus {
    fn from(status: FaithfulEventStatus) -> Self {
        match status {
            FaithfulEventStatus::Applied => StreamStatus::Applied,
            FaithfulEventStatus::LatencyOnly => StreamStatus::LatencyOnly,
            FaithfulEventStatus::Rejected => StreamStatus::Rejected,
            FaithfulEventStatus::LivenessHole => StreamStatus::Unsupported,
        }
    }
}

/// One streamed event's convergence record.
#[derive(Clone, Debug)]
pub struct StreamEvent {
    /// The event as submitted.
    pub event: TopologyEvent,
    /// How it landed.
    pub status: StreamStatus,
    /// Messages the re-convergence delivered (0 unless `Applied`).
    pub messages: u64,
    /// Virtual time the re-convergence took, in microseconds.
    pub micros: u64,
    /// Convergence rounds (virtual time over per-hop latency) under a
    /// fixed latency model; `None` under jittered latency, where rounds
    /// are not well defined.
    pub rounds: Option<u64>,
    /// Whether the new fixed point re-verified: the centralized VCG
    /// reference check (plain) or bank recertification (faithful).
    /// `None` when nothing was re-verified — the event was not applied,
    /// or nodes are down and the centralized reference does not model
    /// the reduced topology.
    pub verified: Option<bool>,
    /// Fingerprint of every node's converged tables *after* this event
    /// (see [`StreamReport::tables_fingerprint`]).
    pub tables_fingerprint: String,
}

/// The result of [`Scenario::stream`]: per-event convergence records,
/// the tables fingerprint at the end of the stream, and the final
/// execution/settlement report.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// One record per submitted event, in submission order.
    pub events: Vec<StreamEvent>,
    /// Fingerprint of the converged tables after the last event — equal,
    /// by the streaming correctness pin, to the fingerprint of a cold
    /// run on the final topology and declarations.
    pub tables_fingerprint: String,
    /// The execution-phase outcome after the stream drained (traffic
    /// released against the final tables, then settled).
    pub final_report: RunReport,
}

impl StreamReport {
    /// Number of events that were applied (changed the fixed point).
    pub fn applied(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.status == StreamStatus::Applied)
            .count()
    }

    /// Whether every applied event's new fixed point re-verified
    /// (vacuously true when nothing was verified).
    pub fn all_verified(&self) -> bool {
        self.events.iter().all(|e| e.verified != Some(false))
    }

    /// Total messages across all streamed re-convergences (excluding
    /// the initial checkpoint and final execution).
    pub fn stream_messages(&self) -> u64 {
        self.events.iter().map(|e| e.messages).sum()
    }
}

impl fmt::Display for StreamReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} events ({} applied), {} stream messages, tables {}",
            self.events.len(),
            self.applied(),
            self.stream_messages(),
            self.tables_fingerprint
        )?;
        for e in &self.events {
            writeln!(
                f,
                "  {:?}: {:?}, {} msgs, {} µs{}{}",
                e.event,
                e.status,
                e.messages,
                e.micros,
                match e.rounds {
                    Some(r) => format!(", {r} rounds"),
                    None => String::new(),
                },
                match e.verified {
                    Some(true) => ", verified",
                    Some(false) => ", VERIFY FAILED",
                    None => "",
                }
            )?;
        }
        Ok(())
    }
}

/// A live, resumable scenario: the converged (and, under the faithful
/// mechanism, bank-certified) fixed point, held open for streamed
/// topology events. Created by [`Scenario::stream_session`]; consumed by
/// [`StreamSession::finish`].
pub struct StreamSession {
    engine: StreamEngine,
}

enum StreamEngine {
    Plain(PlainRunState),
    Faithful(FaithfulRunState),
}

impl StreamSession {
    /// Streams one event against the current fixed point and returns its
    /// convergence record.
    pub fn apply_event(&mut self, event: &TopologyEvent) -> StreamEvent {
        let (status, messages, micros, rounds, verified) = match &mut self.engine {
            StreamEngine::Plain(state) => {
                let o = state.apply_event(event);
                (
                    StreamStatus::from(o.status),
                    o.messages,
                    o.micros,
                    o.rounds,
                    o.reference_ok,
                )
            }
            StreamEngine::Faithful(state) => {
                let o = state.apply_event(event);
                (
                    StreamStatus::from(o.status),
                    o.messages,
                    o.micros,
                    o.rounds,
                    o.recertified,
                )
            }
        };
        StreamEvent {
            event: event.clone(),
            status,
            messages,
            micros,
            rounds,
            verified,
            tables_fingerprint: self.tables_fingerprint(),
        }
    }

    /// Per-node `(DATA1, DATA2, DATA3*)` digests of the current fixed
    /// point. For nodes currently down (plain mechanism only), the
    /// digests are of the purged tables the live network no longer
    /// routes through.
    pub fn table_digests(&self) -> Vec<(Digest, Digest, Digest)> {
        match &self.engine {
            StreamEngine::Plain(state) => state.table_digests(),
            StreamEngine::Faithful(state) => state.table_digests(),
        }
    }

    /// `fnv1a64:`-prefixed fingerprint over every node's table digests —
    /// the quantity the streaming correctness pin compares against a
    /// cold run.
    pub fn tables_fingerprint(&self) -> String {
        fingerprint_digests(&self.table_digests())
    }

    /// The declared cost vector at the current fixed point.
    pub fn declared(&self) -> &CostVector {
        match &self.engine {
            StreamEngine::Plain(state) => state.declared(),
            StreamEngine::Faithful(state) => state.declared(),
        }
    }

    /// Releases execution: queues the scenario's traffic against the
    /// final tables (the faithful bank green-lights from its held
    /// certification), runs it, and settles.
    pub fn finish(self) -> RunReport {
        match self.engine {
            StreamEngine::Plain(state) => RunReport::from_plain(state.finish()),
            StreamEngine::Faithful(state) => RunReport::from_faithful(state.finish()),
        }
    }
}

/// Fingerprints a table-digest vector (the workspace's canonical cheap
/// content hash over the concatenated SHA-256 digests).
pub(crate) fn fingerprint_digests(digests: &[(Digest, Digest, Digest)]) -> String {
    let mut bytes = Vec::with_capacity(digests.len() * 96);
    for (d1, d2, d3) in digests {
        bytes.extend_from_slice(d1.as_bytes());
        bytes.extend_from_slice(d2.as_bytes());
        bytes.extend_from_slice(d3.as_bytes());
    }
    format!("fnv1a64:{:016x}", fnv1a64(&bytes))
}

impl Scenario {
    /// Checkpoints this scenario at its converged fixed point and holds
    /// it open for streamed topology events. Every node plays faithful.
    ///
    /// Streamed re-convergence draws reference caches from an eager
    /// scope seeded from the previous fixed point's pinned cache, so
    /// each event's verification pays one avoid-tree repair instead of
    /// a cold rebuild, and superseded generations are dropped as the
    /// pin rolls forward.
    pub fn stream_session(&self, seed: u64) -> StreamSession {
        let scenario = self.with_route_scope(CacheScope::eager());
        let engine = match &scenario.engine {
            EngineConfig::Plain(c) => {
                StreamEngine::Plain(PlainRunState::checkpoint(c, |_| Box::new(Faithful), seed))
            }
            EngineConfig::Faithful(c) => StreamEngine::Faithful(FaithfulRunState::checkpoint(
                c,
                |_| Box::new(Faithful),
                seed,
            )),
        };
        StreamSession { engine }
    }

    /// Streaming service mode: checkpoint at the converged fixed point,
    /// replay `events` one at a time — each re-converging incrementally
    /// and re-verifying against the centralized reference (plain) or the
    /// bank's recertification (faithful) — then release execution
    /// traffic against the final tables and settle.
    ///
    /// The correctness pin: after every applied event, the streamed
    /// tables are byte-identical to a cold run on the updated topology
    /// and declarations.
    pub fn stream(&self, events: &[TopologyEvent], seed: u64) -> StreamReport {
        let mut session = self.stream_session(seed);
        let events: Vec<StreamEvent> = events.iter().map(|e| session.apply_event(e)).collect();
        let tables_fingerprint = session.tables_fingerprint();
        StreamReport {
            events,
            tables_fingerprint,
            final_report: session.finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Mechanism, TopologySource, TrafficModel};
    use specfaith_fpss::runner::converged_table_digests;

    fn events() -> Vec<TopologyEvent> {
        use specfaith_core::id::NodeId;
        vec![
            TopologyEvent::NodeCost {
                node: NodeId::new(2),
                cost: 9,
            },
            TopologyEvent::NodeCost {
                node: NodeId::new(3),
                cost: 0,
            },
            TopologyEvent::NodeCost {
                node: NodeId::new(2),
                cost: 9,
            },
        ]
    }

    #[test]
    fn plain_stream_applies_verifies_and_lands_on_the_cold_fingerprint() {
        let scenario = Scenario::builder().build();
        let report = scenario.stream(&events(), 7);
        assert_eq!(report.events.len(), 3);
        assert_eq!(report.applied(), 3);
        assert!(report.all_verified());
        assert!(report.stream_messages() > 0);
        assert!(!report.final_report.truncated);
        assert_eq!(report.final_report.tables_match_centralized(), Some(true));

        // The streamed fingerprint is the cold fingerprint of the final
        // declarations.
        let mut session = scenario.stream_session(7);
        for e in events() {
            session.apply_event(&e);
        }
        let cold = converged_table_digests(
            scenario.topology(),
            session.declared(),
            specfaith_netsim::Latency::DEFAULT,
            99,
        );
        assert_eq!(report.tables_fingerprint, fingerprint_digests(&cold));
    }

    #[test]
    fn faithful_stream_recertifies_each_event_and_matches_plain_tables() {
        let plain = Scenario::builder().build();
        let faithful = Scenario::builder().mechanism(Mechanism::faithful()).build();
        let p = plain.stream(&events(), 3);
        let f = faithful.stream(&events(), 3);
        assert!(f.all_verified(), "bank recertifies every streamed event");
        assert!(f.final_report.green_lighted());
        // Same FpssCore fixed point under both mechanisms.
        assert_eq!(p.tables_fingerprint, f.tables_fingerprint);
        for (pe, fe) in p.events.iter().zip(&f.events) {
            assert_eq!(pe.tables_fingerprint, fe.tables_fingerprint);
        }
    }

    #[test]
    fn unsupported_and_rejected_events_leave_the_fingerprint_alone() {
        let scenario = Scenario::builder()
            .topology(TopologySource::Ring(4))
            .traffic(TrafficModel::single_by_index(0, 2, 1))
            .build();
        let baseline = scenario.stream(&[], 1).tables_fingerprint;
        let report = scenario.stream(
            &[
                // Removing any ring node leaves a path: not biconnected.
                TopologyEvent::NodeDown(specfaith_core::id::NodeId::new(1)),
                TopologyEvent::Heal,
            ],
            1,
        );
        assert_eq!(report.events[0].status, StreamStatus::Rejected);
        assert_eq!(report.events[1].status, StreamStatus::Unsupported);
        assert_eq!(report.applied(), 0);
        assert_eq!(report.tables_fingerprint, baseline);

        // The faithful mechanism refuses churn outright (the documented
        // §4.2 liveness hole) instead of hanging.
        let faithful = Scenario::builder()
            .topology(TopologySource::Ring(4))
            .traffic(TrafficModel::single_by_index(0, 2, 1))
            .mechanism(Mechanism::faithful())
            .build();
        let f = faithful.stream(
            &[TopologyEvent::NodeDown(specfaith_core::id::NodeId::new(1))],
            1,
        );
        assert_eq!(f.events[0].status, StreamStatus::Unsupported);
        assert!(f.final_report.green_lighted());
    }
}
