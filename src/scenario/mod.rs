//! The unified scenario API: one builder for plain and faithful runs, and
//! parallel deviation sweeps.
//!
//! Every workload in this workspace — the paper's Figure 1 experiment, a
//! 64-AS scale-free network under all-pairs traffic, a hotspot stress run
//! — is the same four choices:
//!
//! 1. **where** the nodes live: a [`TopologySource`],
//! 2. **what** they send: a [`TrafficModel`] (and a [`CostModel`] for
//!    their transit costs),
//! 3. **how** the network behaves: a latency model
//!    ([`Latency`](crate::netsim::Latency)),
//! 4. **which** mechanism governs them: [`Mechanism::Plain`] (FPSS as
//!    published — strategyproof pricing, no enforcement) or
//!    [`Mechanism::Faithful`] (the paper's checker/bank extension).
//!
//! [`Scenario::builder`] captures those choices, [`Scenario::run`] plays
//! one faithful profile, [`Scenario::run_with_deviant`] plays one
//! unilateral deviation, and [`Scenario::sweep`] runs the Theorem-1 grid —
//! every `(seed, node, deviation)` cell — **in parallel**, with
//! deterministic per-cell seed derivation ([`cell_seed`]) so the parallel
//! report is byte-identical to the serial one.
//!
//! # Quickstart
//!
//! ```
//! use specfaith::scenario::{Catalog, Mechanism, Scenario, TopologySource, TrafficModel};
//!
//! let scenario = Scenario::builder()
//!     .topology(TopologySource::Figure1)
//!     .traffic(TrafficModel::single_by_index(5, 4, 5)) // X sends 5 packets to Z
//!     .mechanism(Mechanism::faithful())
//!     .build();
//!
//! // One honest run.
//! let run = scenario.run(42);
//! assert!(run.green_lighted() && !run.detected);
//!
//! // The Theorem-1 sweep: catalog × node × seed, in parallel.
//! let report = scenario.sweep(&[42, 43], &Catalog::standard());
//! assert!(report.is_ex_post_nash());
//! ```
//!
//! The deprecated `PlainFpssSim` / `FaithfulSim` builders are thin
//! adapters over the same engines ([`specfaith_fpss::runner`] and
//! [`specfaith_faithful::harness`]) and will be removed one release after
//! 0.2.

mod builder;
mod coord;
mod report;
mod shard;
mod stream;
mod sweep;

pub use builder::{CostModel, ScenarioBuilder, ScenarioError, TopologySource, TrafficModel};
pub use coord::{
    run_worker, run_worker_sampled, CoordAddr, CoordConfig, CoordError, CoordListener,
    CoordOutcome, CoordStats, Coordinator, FaultPlan, Frame, GridManifest, WorkerConfig,
    WorkerError, WorkerStats, WorkerSummary, COORD_FORMAT,
};
pub use report::{MechanismOutcome, RunReport, SweepReport};
pub use shard::{FragmentCell, MergeError, ShardSpec, ShardTiming, SweepFragment, FRAGMENT_FORMAT};
pub use specfaith_fpss::runner::ReferenceCheck;
pub use specfaith_graph::cache::CacheScope;
pub use specfaith_netsim::{Dynamics, NetModel, TopologyEvent};
pub use stream::{StreamEvent, StreamReport, StreamSession, StreamStatus};
pub use sweep::{cell_seed, Catalog};

use specfaith_core::equilibrium::EquilibriumReport;
use specfaith_core::id::NodeId;
use specfaith_core::money::Money;
use specfaith_faithful::harness as faithful_engine;
use specfaith_faithful::harness::FaithfulConfig;
use specfaith_fpss::deviation::RationalStrategy;
use specfaith_fpss::runner as plain_engine;
use specfaith_fpss::runner::PlainConfig;
use specfaith_fpss::settle::SettlementConfig;
use specfaith_fpss::traffic::TrafficMatrix;
use specfaith_graph::costs::CostVector;
use specfaith_graph::topology::Topology;

/// Which mechanism a [`Scenario`] runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Mechanism {
    /// FPSS as published: VCG pricing makes cost *misreports* useless, but
    /// nothing polices computation or message passing — §4.3's
    /// manipulations are profitable. Plain runs settle with the
    /// builder-level [`ScenarioBuilder::settlement`] parameters.
    Plain,
    /// The paper's faithful extension: checker mirrors, bank checkpoints,
    /// restart-then-halt, and ε-above penalties.
    Faithful {
        /// The ε margin added on top of clawed-back gains when penalizing.
        epsilon: Money,
        /// Construction restarts the bank grants before halting.
        max_restarts: u32,
        /// The progress value `V` every node forfeits on a halt.
        progress_value: Money,
        /// Settlement parameters (per-packet value `W`) for faithful
        /// runs; overrides the builder-level settlement.
        settlement: SettlementConfig,
    },
}

impl Mechanism {
    /// The faithful mechanism with the engine's default enforcement
    /// parameters (ε = 1, 2 restarts, V = 1,000,000, default settlement).
    pub fn faithful() -> Self {
        Mechanism::Faithful {
            epsilon: Money::new(1),
            max_restarts: 2,
            progress_value: Money::new(1_000_000),
            settlement: SettlementConfig::default(),
        }
    }

    /// Whether this is the faithful mechanism.
    pub fn is_faithful(&self) -> bool {
        matches!(self, Mechanism::Faithful { .. })
    }
}

/// The materialized engine configuration behind a scenario.
#[derive(Clone, Debug)]
pub(crate) enum EngineConfig {
    Plain(PlainConfig),
    Faithful(FaithfulConfig),
}

/// A fully materialized simulation instance: topology, costs, traffic,
/// latency, and mechanism, ready to [`run`](Scenario::run) under any seed
/// or [`sweep`](Scenario::sweep) across a deviation catalog.
///
/// Build one with [`Scenario::builder`]. Random sources (topologies,
/// costs, traffic) are materialized **once**, at build time, from the
/// builder's instance seed — so a `Scenario` compares the *same* network
/// across run seeds, deviants, and mechanisms.
#[derive(Clone, Debug)]
pub struct Scenario {
    engine: EngineConfig,
    mechanism: Mechanism,
}

impl Scenario {
    /// Starts building a scenario. See [`ScenarioBuilder`].
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::new()
    }

    pub(crate) fn from_parts(engine: EngineConfig, mechanism: Mechanism) -> Self {
        Scenario { engine, mechanism }
    }

    /// This scenario with its route caches drawn from `scope` instead —
    /// the seam the sweep engine uses to give each sweep a registry of
    /// its own, created before the fan-out and dropped with the last
    /// cell.
    pub fn with_route_scope(&self, scope: CacheScope) -> Scenario {
        let mut scenario = self.clone();
        match &mut scenario.engine {
            EngineConfig::Plain(c) => c.routes = scope,
            EngineConfig::Faithful(c) => c.routes = scope,
        }
        scenario
    }

    /// The route-cache scope this scenario's runs draw from.
    pub fn route_scope(&self) -> &CacheScope {
        match &self.engine {
            EngineConfig::Plain(c) => &c.routes,
            EngineConfig::Faithful(c) => &c.routes,
        }
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        match &self.engine {
            EngineConfig::Plain(c) => &c.topo,
            EngineConfig::Faithful(c) => &c.topo,
        }
    }

    /// True per-node transit costs.
    pub fn costs(&self) -> &CostVector {
        match &self.engine {
            EngineConfig::Plain(c) => &c.true_costs,
            EngineConfig::Faithful(c) => &c.true_costs,
        }
    }

    /// The execution-phase traffic.
    pub fn traffic(&self) -> &TrafficMatrix {
        match &self.engine {
            EngineConfig::Plain(c) => &c.traffic,
            EngineConfig::Faithful(c) => &c.traffic,
        }
    }

    /// The mechanism this scenario runs.
    pub fn mechanism(&self) -> &Mechanism {
        &self.mechanism
    }

    /// Number of topology nodes.
    pub fn num_nodes(&self) -> usize {
        self.topology().num_nodes()
    }

    /// Runs the scenario with every node faithful.
    pub fn run(&self, seed: u64) -> RunReport {
        match &self.engine {
            EngineConfig::Plain(c) => {
                RunReport::from_plain(plain_engine::run_plain_faithful(c, seed))
            }
            EngineConfig::Faithful(c) => {
                RunReport::from_faithful(faithful_engine::run_faithful_honest(c, seed))
            }
        }
    }

    /// Runs with `deviant` playing `strategy` and everyone else faithful.
    pub fn run_with_deviant(
        &self,
        deviant: NodeId,
        strategy: Box<dyn RationalStrategy>,
        seed: u64,
    ) -> RunReport {
        match &self.engine {
            EngineConfig::Plain(c) => RunReport::from_plain(plain_engine::run_plain_with_deviant(
                c, deviant, strategy, seed,
            )),
            EngineConfig::Faithful(c) => RunReport::from_faithful(
                faithful_engine::run_faithful_with_deviant(c, deviant, strategy, seed),
            ),
        }
    }

    /// Runs with an arbitrary per-node strategy assignment.
    pub fn run_with(
        &self,
        strategies: impl FnMut(NodeId) -> Box<dyn RationalStrategy>,
        seed: u64,
    ) -> RunReport {
        match &self.engine {
            EngineConfig::Plain(c) => {
                RunReport::from_plain(plain_engine::run_plain(c, strategies, seed))
            }
            EngineConfig::Faithful(c) => {
                RunReport::from_faithful(faithful_engine::run_faithful(c, strategies, seed))
            }
        }
    }

    /// The single-seed equilibrium report over `catalog`: the faithful
    /// profile plus every `(node, deviation)` unilateral deviation.
    ///
    /// Equivalent to `sweep(&[seed], catalog)`'s one per-seed report, and
    /// uses the identical per-cell seed derivation ([`cell_seed`]), so
    /// single-seed and swept results agree exactly.
    pub fn equilibrium_report(&self, seed: u64, catalog: &Catalog) -> EquilibriumReport {
        sweep::equilibrium_report_serial(self, seed, catalog)
    }

    /// The Theorem-1 sweep over a seed grid: for every seed, the faithful
    /// baseline plus every `(node, deviation)` cell from `catalog`,
    /// executed **in parallel** across all cells of all seeds.
    ///
    /// Each cell derives its own seed via [`cell_seed`], so results do not
    /// depend on scheduling; the output is byte-identical to
    /// [`Scenario::sweep_serial`] for the same inputs, regardless of
    /// thread count.
    ///
    /// The sweep owns its route caches: every cell draws from one fresh
    /// sweep-scoped [`CacheScope`] (never the process-wide registry), so
    /// the cells of this sweep can neither evict each other's caches nor
    /// be evicted by concurrent workloads, and all cache memory is
    /// released when the sweep returns.
    ///
    /// The default scope is **eager** ([`CacheScope::eager`]): a
    /// misreport cell's single-use cache is dropped as soon as the cell's
    /// reference check completes, so peak cache memory tracks the
    /// *concurrent* cells (roughly 2 MB/cell at `n = 64` times the thread
    /// count) instead of every distinct declared-cost vector of the sweep
    /// (~1.5 GB for the full-catalog standard sweep before eager
    /// release). The honest-declaration cache all non-misreporting cells
    /// share is pinned for the sweep's lifetime. Results are byte-
    /// identical to any other scope choice. Callers who want different
    /// retention pass a scope to [`Scenario::sweep_scoped`].
    pub fn sweep(&self, seeds: &[u64], catalog: &Catalog) -> SweepReport {
        self.sweep_scoped(seeds, catalog, &CacheScope::eager())
    }

    /// [`Scenario::sweep`] drawing route caches from a caller-provided
    /// scope — for callers that sweep repeatedly over the same instance
    /// (keep the scope alive to share reference tables across sweeps) or
    /// that assert on cache behavior (hits, misses, evictions).
    pub fn sweep_scoped(
        &self,
        seeds: &[u64],
        catalog: &Catalog,
        scope: &CacheScope,
    ) -> SweepReport {
        sweep::sweep(&self.with_route_scope(scope.clone()), seeds, catalog, true)
    }

    /// The same sweep as [`Scenario::sweep`], executed strictly serially
    /// on the calling thread. Reference implementation for determinism
    /// tests and a fallback for single-core environments.
    pub fn sweep_serial(&self, seeds: &[u64], catalog: &Catalog) -> SweepReport {
        sweep::sweep(
            &self.with_route_scope(CacheScope::eager()),
            seeds,
            catalog,
            false,
        )
    }

    /// The sweep restricted to deviations by `agents` (topology indices):
    /// the large-`n` entry point, where the full `n × catalog` grid is
    /// out of reach but a sampled agent set still probes faithfulness.
    ///
    /// Every evaluated cell is **byte-identical** to the corresponding
    /// cell of the full [`Scenario::sweep`] — per-cell seeds depend only
    /// on `(seed, agent, deviation)`, not on which other agents are swept.
    ///
    /// # Panics
    ///
    /// Panics if an agent index is out of range or listed twice.
    pub fn sweep_sampled(&self, seeds: &[u64], catalog: &Catalog, agents: &[usize]) -> SweepReport {
        let n = self.num_nodes();
        assert!(
            agents.iter().all(|&agent| agent < n),
            "sampled agents must be topology indices"
        );
        assert!(
            (1..agents.len()).all(|i| !agents[..i].contains(&agents[i])),
            "sampled agents must be distinct"
        );
        sweep::sweep_agents(
            &self.with_route_scope(CacheScope::eager()),
            seeds,
            catalog,
            agents,
            true,
        )
    }

    /// One shard of the full-agent sweep grid: evaluates every seed's
    /// honest baseline plus exactly the `(seed × agent × deviation)`
    /// cells `shard` owns (strided assignment — see
    /// [`ShardSpec::cell_indices`]), and returns them as a serializable
    /// [`SweepFragment`].
    ///
    /// Running every shard of the partition (in any order, on any
    /// machines) and recombining with [`SweepFragment::merge`] yields a
    /// [`SweepReport`] **byte-identical** to [`Scenario::sweep`] over the
    /// same seeds and catalog — per-cell seeds depend only on
    /// `(seed, agent, deviation)`, never on the partition.
    ///
    /// `instance` is a caller-chosen grid label carried in the fragment
    /// manifest; the merge refuses fragments whose labels (or instance
    /// fingerprints, seeds, agents, or catalogs) disagree.
    pub fn sweep_shard(
        &self,
        seeds: &[u64],
        catalog: &Catalog,
        shard: ShardSpec,
        instance: &str,
    ) -> SweepFragment {
        let agents: Vec<usize> = (0..self.num_nodes()).collect();
        shard::run_shard(
            &self.with_route_scope(CacheScope::eager()),
            seeds,
            catalog,
            &agents,
            shard,
            instance,
        )
    }

    /// [`Scenario::sweep_shard`] restricted to deviations by `agents` —
    /// the sharded counterpart of [`Scenario::sweep_sampled`], with the
    /// same cell-identity guarantee.
    ///
    /// # Panics
    ///
    /// Panics if an agent index is out of range or listed twice.
    pub fn sweep_shard_sampled(
        &self,
        seeds: &[u64],
        catalog: &Catalog,
        agents: &[usize],
        shard: ShardSpec,
        instance: &str,
    ) -> SweepFragment {
        let n = self.num_nodes();
        assert!(
            agents.iter().all(|&agent| agent < n),
            "sampled agents must be topology indices"
        );
        assert!(
            (1..agents.len()).all(|i| !agents[..i].contains(&agents[i])),
            "sampled agents must be distinct"
        );
        shard::run_shard(
            &self.with_route_scope(CacheScope::eager()),
            seeds,
            catalog,
            agents,
            shard,
            instance,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mechanism_default_constructor_matches_engine_defaults() {
        let Mechanism::Faithful {
            epsilon,
            max_restarts,
            progress_value,
            ..
        } = Mechanism::faithful()
        else {
            panic!("faithful() must build the Faithful variant");
        };
        assert_eq!(epsilon, Money::new(1));
        assert_eq!(max_restarts, 2);
        assert_eq!(progress_value, Money::new(1_000_000));
        assert!(Mechanism::faithful().is_faithful());
        assert!(!Mechanism::Plain.is_faithful());
    }
}
