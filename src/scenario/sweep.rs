//! The parallel deviation sweep: the `(seed × node × deviation)` grid,
//! evaluated in two phases with deterministic per-cell seeds.
//!
//! **Phase 1** runs each seed's honest baseline exactly once, in parallel
//! across seeds, and wraps the results in `Arc`s: every `(node ×
//! deviation)` cell of a seed — and the final report assembly — borrows
//! the same immutable baseline instead of re-deriving it. Every sweep
//! owns a fresh sweep-scoped
//! [`CacheScope`](specfaith_graph::cache::CacheScope) threaded through
//! all of its cells: the baselines warm it with the honest declared-cost
//! vector's [`RouteCache`](specfaith_graph::cache::RouteCache) before the
//! fan-out, each distinct misreported vector is registered exactly once
//! (never evicted — the scope is unbounded and dies with the sweep), and
//! concurrent workloads cannot interfere with it.
//!
//! **Phase 2** evaluates the deviation cells. Every cell is an
//! independent, deterministic simulator run, so evaluation order cannot
//! influence results; [`cell_seed`] makes each cell's seed a pure
//! function of `(base seed, agent, deviation)` so the grid's *contents*
//! do not depend on how it is scheduled either. The parallel path and the
//! serial path run the identical cell list through the identical
//! evaluator — `assert_eq!` between their [`SweepReport`]s is the
//! workspace's standing determinism test.

use super::report::SweepReport;
use super::Scenario;
use rayon::prelude::*;
use specfaith_core::equilibrium::{DeviationOutcome, DeviationSpec, EquilibriumReport};
use specfaith_core::id::NodeId;
use specfaith_core::money::Money;
use specfaith_fpss::deviation::{standard_catalog, RationalStrategy};
use std::fmt;
use std::sync::Arc;

/// A library of deviation strategies for sweeps.
///
/// A catalog is a *factory*: sweeps instantiate a fresh strategy per cell
/// (strategies are stateful — e.g. transient deviants count attempts), and
/// some strategies are parameterized by the deviant's identity (forged
/// pricing tags use the deviant's own id, which no checker accepts).
#[derive(Clone)]
pub struct Catalog {
    factory: Arc<dyn Fn(NodeId) -> Vec<Box<dyn RationalStrategy>> + Send + Sync>,
}

impl Catalog {
    /// The paper's standard §4.3 catalog
    /// ([`specfaith_fpss::deviation::standard_catalog`]): 13 deviations
    /// covering all three action classes and all three phases.
    pub fn standard() -> Self {
        Catalog::from_factory(standard_catalog)
    }

    /// A catalog from an arbitrary factory. The factory must be
    /// *name-stable*: for every deviant id it returns the same number of
    /// strategies, with the same [`DeviationSpec`] names, in the same
    /// order.
    pub fn from_factory(
        factory: impl Fn(NodeId) -> Vec<Box<dyn RationalStrategy>> + Send + Sync + 'static,
    ) -> Self {
        Catalog {
            factory: Arc::new(factory),
        }
    }

    /// The specs of this catalog (instantiated for node 0; the factory's
    /// name-stability makes the choice immaterial).
    pub fn specs(&self) -> Vec<DeviationSpec> {
        (self.factory)(NodeId::new(0))
            .iter()
            .map(|s| s.spec())
            .collect()
    }

    /// Number of deviations in the catalog.
    pub fn len(&self) -> usize {
        self.specs().len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A fresh instance of deviation `index` for `deviant`.
    fn strategy(&self, deviant: NodeId, index: usize) -> Box<dyn RationalStrategy> {
        (self.factory)(deviant)
            .into_iter()
            .nth(index)
            .expect("catalog factories are name-stable across deviants")
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::standard()
    }
}

impl fmt::Debug for Catalog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Catalog")
            .field("deviations", &self.specs())
            .finish()
    }
}

/// The deterministic per-cell seed: a pure SplitMix64-style mix of the
/// sweep's base seed, the deviating agent, and the deviation index.
///
/// The faithful *baseline* cell of a seed uses the base seed unchanged,
/// so `scenario.run(seed)` reproduces it exactly; a deviation cell
/// `(agent, d)` runs under `cell_seed(seed, agent, d)`, reproducible via
/// [`Scenario::run_with_deviant`](super::Scenario::run_with_deviant).
pub fn cell_seed(base_seed: u64, agent: u64, deviation: u64) -> u64 {
    let mut state = base_seed;
    for word in [agent.wrapping_add(1), deviation.wrapping_add(1)] {
        state = state
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(word))
            .rotate_left(27);
        state = (state ^ (state >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        state = (state ^ (state >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        state ^= state >> 31;
    }
    state
}

/// One deviation cell of the sweep grid. Honest baselines are phase 1 —
/// they are shared per seed, not enumerated as cells.
///
/// A cell's seed ([`cell_seed`]) depends only on `(base_seed, agent,
/// deviation)` — never on which *other* cells the grid holds — so an
/// agent-sampled grid evaluates exactly the cells the full grid would.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Cell {
    /// Index into the caller's seed list.
    pub(crate) seed_index: usize,
    /// The caller's base seed for this cell's row.
    pub(crate) base_seed: u64,
    /// The deviating agent (topology index).
    pub(crate) agent: usize,
    /// Index into the catalog's deviation list.
    pub(crate) deviation: usize,
}

/// An evaluated run's deviant-relevant utility data — one per deviation
/// cell, and (behind an `Arc`, shared across the seed's whole row) one
/// per honest baseline.
#[derive(Clone, Debug)]
pub(crate) struct CellResult {
    pub(crate) utilities: Vec<Money>,
    pub(crate) detected: bool,
}

/// Phase 1 evaluator: the honest baseline of one seed, reproducible via
/// `scenario.run(base_seed)`.
pub(crate) fn evaluate_baseline(scenario: &Scenario, base_seed: u64) -> CellResult {
    let run = scenario.run(base_seed);
    CellResult {
        utilities: run.utilities,
        detected: run.detected,
    }
}

/// Phase 2 evaluator: one `(agent, deviation)` cell, reproducible via
/// `scenario.run_with_deviant(agent, strategy, cell_seed(..))`.
pub(crate) fn evaluate(scenario: &Scenario, catalog: &Catalog, cell: &Cell) -> CellResult {
    let agent_id = NodeId::from_index(cell.agent);
    let strategy = catalog.strategy(agent_id, cell.deviation);
    let seed = cell_seed(cell.base_seed, cell.agent as u64, cell.deviation as u64);
    let run = scenario.run_with_deviant(agent_id, strategy, seed);
    CellResult {
        utilities: run.utilities,
        detected: run.detected,
    }
}

/// Builds the deviation-cell grid for `seeds`: per seed, agents ×
/// deviations in row-major order. This enumeration order is the shard
/// partition's coordinate system: a cell's position here is the "global
/// grid index" sharded by [`ShardSpec`](super::shard::ShardSpec) and
/// recorded in [`SweepFragment`](super::shard::SweepFragment) cells.
pub(crate) fn deviation_grid(seeds: &[u64], agents: &[usize], deviations: usize) -> Vec<Cell> {
    let mut cells = Vec::with_capacity(seeds.len() * agents.len() * deviations);
    for (seed_index, &base_seed) in seeds.iter().enumerate() {
        for &agent in agents {
            for deviation in 0..deviations {
                cells.push(Cell {
                    seed_index,
                    base_seed,
                    agent,
                    deviation,
                });
            }
        }
    }
    cells
}

/// Assembles per-seed [`EquilibriumReport`]s: faithful utilities come
/// from the shared phase-1 baselines, outcomes from the evaluated cells.
/// `results` must be index-aligned with `cells` — both paths (serial and
/// parallel) guarantee that by construction.
fn assemble(
    seeds: &[u64],
    specs: &[DeviationSpec],
    baselines: &[Arc<CellResult>],
    cells: &[Cell],
    results: Vec<CellResult>,
) -> SweepReport {
    let mut reports: Vec<EquilibriumReport> = baselines
        .iter()
        .map(|baseline| EquilibriumReport {
            faithful_utilities: baseline.utilities.clone(),
            outcomes: Vec::new(),
        })
        .collect();
    for (cell, result) in cells.iter().zip(results) {
        let faithful_utility = baselines[cell.seed_index].utilities[cell.agent];
        reports[cell.seed_index].outcomes.push(DeviationOutcome {
            agent: cell.agent,
            deviation: specs[cell.deviation].clone(),
            faithful_utility,
            deviant_utility: result.utilities[cell.agent],
            detected: result.detected,
        });
    }
    SweepReport {
        per_seed: seeds.iter().copied().zip(reports).collect(),
    }
}

/// Runs the two-phase sweep over the full agent set; `parallel` picks
/// rayon fan-out vs. strict serial evaluation of the identical work
/// list. Route caches come from whatever [`CacheScope`] the scenario
/// carries — the public `Scenario::sweep*` wrappers thread a fresh
/// sweep-scoped registry in before calling here.
///
/// [`CacheScope`]: specfaith_graph::cache::CacheScope
pub(super) fn sweep(
    scenario: &Scenario,
    seeds: &[u64],
    catalog: &Catalog,
    parallel: bool,
) -> SweepReport {
    let agents: Vec<usize> = (0..scenario.num_nodes()).collect();
    sweep_agents(scenario, seeds, catalog, &agents, parallel)
}

/// [`sweep`] restricted to deviations by `agents`.
pub(super) fn sweep_agents(
    scenario: &Scenario,
    seeds: &[u64],
    catalog: &Catalog,
    agents: &[usize],
    parallel: bool,
) -> SweepReport {
    let specs = catalog.specs();
    // Pin the honest-declaration cache — shared by the baselines and
    // every non-misreporting cell — before any cell runs. On eager
    // scopes this keeps per-cell release (which drops each misreport
    // cell's single-use cache as the cell completes) from thrashing it;
    // on every scope it marks the baseline as the seed base, so each
    // misreport cell's cache repairs the baseline's trees against its
    // one-node declaration delta instead of rebuilding them from scratch.
    let _ = scenario
        .route_scope()
        .pin(scenario.topology(), scenario.costs());
    // Phase 1: one honest baseline per seed, shared immutably with every
    // cell of that seed's row (and warming the scenario's route-cache
    // scope for plain scenarios before the fan-out).
    let baselines: Vec<Arc<CellResult>> = if parallel {
        seeds
            .par_iter()
            .map(|&base_seed| Arc::new(evaluate_baseline(scenario, base_seed)))
            .collect()
    } else {
        seeds
            .iter()
            .map(|&base_seed| Arc::new(evaluate_baseline(scenario, base_seed)))
            .collect()
    };
    // Phase 2: the (agent × deviation) cells of every seed.
    let cells = deviation_grid(seeds, agents, specs.len());
    let results: Vec<CellResult> = if parallel {
        cells
            .par_iter()
            .map(|cell| evaluate(scenario, catalog, cell))
            .collect()
    } else {
        cells
            .iter()
            .map(|cell| evaluate(scenario, catalog, cell))
            .collect()
    };
    assemble(seeds, &specs, &baselines, &cells, results)
}

/// The single-seed serial report (`Scenario::equilibrium_report`), in a
/// report-scoped cache registry of its own.
pub(super) fn equilibrium_report_serial(
    scenario: &Scenario,
    seed: u64,
    catalog: &Catalog,
) -> EquilibriumReport {
    let scoped = scenario.with_route_scope(specfaith_graph::cache::CacheScope::eager());
    let mut report = sweep(&scoped, &[seed], catalog, false);
    report
        .per_seed
        .pop()
        .map(|(_, report)| report)
        .expect("one seed in, one report out")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Mechanism, TopologySource, TrafficModel};

    fn tiny_scenario() -> Scenario {
        Scenario::builder()
            .topology(TopologySource::Figure1)
            .traffic(TrafficModel::single_by_index(5, 4, 3))
            .mechanism(Mechanism::faithful())
            .build()
    }

    #[test]
    fn cell_seed_is_stable_and_spreads() {
        // Pure function: same inputs, same output.
        assert_eq!(cell_seed(7, 2, 5), cell_seed(7, 2, 5));
        // Distinct cells get distinct seeds (no collisions on a small grid).
        let mut seen = std::collections::BTreeSet::new();
        for base in 0..4u64 {
            for agent in 0..6u64 {
                for deviation in 0..13u64 {
                    seen.insert(cell_seed(base, agent, deviation));
                }
            }
        }
        assert_eq!(seen.len(), 4 * 6 * 13, "cell seeds must not collide");
    }

    #[test]
    fn standard_catalog_has_thirteen_name_stable_entries() {
        let catalog = Catalog::standard();
        assert_eq!(catalog.len(), 13);
        assert!(!catalog.is_empty());
        let names_for = |node: u32| -> Vec<String> {
            (catalog.factory)(NodeId::new(node))
                .iter()
                .map(|s| s.spec().name().to_string())
                .collect()
        };
        assert_eq!(names_for(0), names_for(5), "name-stability across deviants");
    }

    #[test]
    fn single_seed_report_equals_the_swept_row() {
        let scenario = tiny_scenario();
        let catalog = Catalog::standard();
        let single = scenario.equilibrium_report(11, &catalog);
        let swept = scenario.sweep(&[11], &catalog);
        assert_eq!(swept.per_seed.len(), 1);
        assert_eq!(swept.per_seed[0].1, single);
    }

    #[test]
    fn baseline_cell_is_reproducible_via_run() {
        let scenario = tiny_scenario();
        let catalog = Catalog::standard();
        let report = scenario.equilibrium_report(3, &catalog);
        let baseline = scenario.run(3);
        assert_eq!(report.faithful_utilities, baseline.utilities);
    }

    #[test]
    fn sweeps_own_their_caches_and_never_evict() {
        // Regression test for the registry-thrash bug: a sweep's
        // misreport cells each declare a distinct cost vector, and under
        // the old process-wide LRU registry enough of them silently
        // evicted each other's caches and recomputed Dijkstra trees.
        // A sweep-scoped registry must register each distinct vector
        // exactly once (misses == distinct vectors — a thrashing
        // registry shows more), evict nothing, and serve every repeat
        // lookup from cache.
        use specfaith_fpss::deviation::{DropTransitPackets, MisreportCost};
        let scenario = Scenario::builder()
            .topology(crate::scenario::TopologySource::RandomBiconnected {
                n: 12,
                extra_edges: 4,
            })
            .costs(crate::scenario::CostModel::Random { lo: 1, hi: 9 })
            .traffic(TrafficModel::single_by_index(0, 7, 2))
            .instance_seed(5)
            .build();
        let n = scenario.num_nodes();
        // Two misreports (distinct positive deltas: every cell's declared
        // vector is unique) plus one declaration-preserving deviation
        // (its cells all share the honest baseline's cache).
        let catalog = Catalog::from_factory(|_| {
            vec![
                Box::new(MisreportCost { delta: 1 }),
                Box::new(MisreportCost { delta: 2 }),
                Box::new(DropTransitPackets),
            ]
        });
        let scope = crate::scenario::CacheScope::unbounded();
        let report = scenario.sweep_scoped(&[3], &catalog, &scope);
        assert_eq!(report.total_deviations(), n * 3);
        let distinct_vectors = 1 + 2 * n; // honest + (agent × misreport)
        assert_eq!(
            scope.misses(),
            distinct_vectors,
            "every distinct declared-cost vector registered exactly once"
        );
        assert_eq!(scope.evictions(), 0, "sweep scopes never evict");
        assert_eq!(
            scope.hits(),
            n + 1, // the baseline and the declaration-preserving cells
            // reuse the honest cache the sweep's pre-sweep pin registered
            "declaration-preserving cells must share the baseline's cache"
        );
        assert_eq!(scope.len(), distinct_vectors);
        assert_eq!(
            scope.seeded(),
            2 * n,
            "every misreport cell's cache was seeded from the pinned baseline"
        );
    }

    #[test]
    fn eager_scope_releases_per_cell_caches_without_changing_results() {
        // The eager-eviction satellite: the same sweep on an eager scope
        // must (a) produce byte-identical reports, (b) end with only the
        // pinned honest cache registered, having released every misreport
        // cell's single-use cache as its cell completed, and (c) keep the
        // peak registration strictly below the retain-everything total.
        use specfaith_fpss::deviation::{DropTransitPackets, MisreportCost};
        let scenario = Scenario::builder()
            .topology(crate::scenario::TopologySource::RandomBiconnected {
                n: 12,
                extra_edges: 4,
            })
            .costs(crate::scenario::CostModel::Random { lo: 1, hi: 9 })
            .traffic(TrafficModel::single_by_index(0, 7, 2))
            .instance_seed(5)
            .build();
        let n = scenario.num_nodes();
        let catalog = Catalog::from_factory(|_| {
            vec![
                Box::new(MisreportCost { delta: 1 }),
                Box::new(MisreportCost { delta: 2 }),
                Box::new(DropTransitPackets),
            ]
        });
        let lingering = crate::scenario::CacheScope::unbounded();
        let reference = scenario.sweep_scoped(&[3], &catalog, &lingering);
        let eager = crate::scenario::CacheScope::eager();
        let released = scenario.sweep_scoped(&[3], &catalog, &eager);
        assert_eq!(released, reference, "eager release changes no result");
        let distinct_vectors = 1 + 2 * n;
        assert_eq!(
            eager.misses(),
            distinct_vectors,
            "eager release never forces a recompute in this sweep"
        );
        assert_eq!(
            eager.len(),
            1,
            "only the pinned honest cache survives the sweep"
        );
        assert_eq!(
            eager.released(),
            2 * n,
            "every misreport cell's cache released at cell completion"
        );
        assert_eq!(
            eager.seeded(),
            2 * n,
            "released-and-reseeded cells still repair from the pinned baseline"
        );
        // Parallel peak is nondeterministic but bounded by concurrency;
        // retaining everything would show distinct_vectors.
        assert!(
            eager.peak_len() < distinct_vectors,
            "peak {} must undercut the retain-everything total {}",
            eager.peak_len(),
            distinct_vectors
        );
        assert_eq!(lingering.len(), distinct_vectors, "non-eager retains all");
    }

    #[test]
    fn sampled_sweep_cells_equal_the_full_grid() {
        let scenario = tiny_scenario();
        let catalog = Catalog::from_factory(|_| {
            standard_catalog(NodeId::new(0))
                .into_iter()
                .take(2)
                .collect()
        });
        let full = scenario.sweep(&[7], &catalog);
        let sampled = scenario.sweep_sampled(&[7], &catalog, &[1, 4]);
        assert_eq!(sampled.per_seed.len(), 1);
        let full_report = &full.per_seed[0].1;
        let sampled_report = &sampled.per_seed[0].1;
        assert_eq!(
            sampled_report.faithful_utilities,
            full_report.faithful_utilities
        );
        assert_eq!(sampled_report.outcomes.len(), 2 * 2);
        for outcome in &sampled_report.outcomes {
            let matching = full_report
                .outcomes
                .iter()
                .find(|o| {
                    o.agent == outcome.agent && o.deviation.name() == outcome.deviation.name()
                })
                .expect("sampled cell exists in the full grid");
            assert_eq!(outcome, matching, "sampled cells are the full grid's cells");
        }
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn sampled_sweep_rejects_duplicate_agents() {
        let scenario = tiny_scenario();
        let _ = scenario.sweep_sampled(&[1], &Catalog::standard(), &[2, 2]);
    }

    #[test]
    fn deviation_cell_is_reproducible_via_run_with_deviant() {
        let scenario = tiny_scenario();
        let catalog = Catalog::standard();
        let report = scenario.equilibrium_report(3, &catalog);
        // Reproduce cell (agent 2 = C, deviation 4 = spoof-short-routes).
        let (agent, deviation) = (2usize, 4usize);
        let strategy = catalog.strategy(NodeId::from_index(agent), deviation);
        let rerun = scenario.run_with_deviant(
            NodeId::from_index(agent),
            strategy,
            cell_seed(3, agent as u64, deviation as u64),
        );
        let outcome = report
            .outcomes
            .iter()
            .find(|o| o.agent == agent && o.deviation.name() == catalog.specs()[deviation].name())
            .expect("cell present");
        assert_eq!(outcome.deviant_utility, rerun.utilities[agent]);
        assert_eq!(outcome.detected, rerun.detected);
    }
}
