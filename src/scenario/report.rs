//! Unified run and sweep reports.

use specfaith_core::equilibrium::{DeviationOutcome, EquilibriumReport, EquilibriumSuite};
use specfaith_core::money::Money;
use specfaith_faithful::harness::FaithfulRunResult;
use specfaith_fpss::runner::PlainRunResult;
use specfaith_netsim::{NetStats, SimTime};
use std::fmt;

/// Mechanism-specific outcome detail inside a [`RunReport`].
#[derive(Clone, Debug)]
pub enum MechanismOutcome {
    /// A plain-FPSS run.
    Plain {
        /// Whether every node's converged tables equal the centralized
        /// VCG reference under the declared costs.
        tables_match_centralized: bool,
    },
    /// A faithful-mechanism run.
    Faithful {
        /// Whether construction was certified and execution ran.
        green_lighted: bool,
        /// Whether the mechanism halted (restart budget exhausted).
        halted: bool,
        /// Construction restarts performed by the bank.
        restarts: u32,
        /// Penalties charged per node.
        penalties: Vec<Money>,
        /// Whether the certified tables equal the centralized VCG
        /// reference (`None` when the mechanism halted before
        /// certifying).
        tables_match_centralized: Option<bool>,
    },
}

/// Result of one scenario run, for either mechanism.
///
/// The common fields (`utilities`, `detected`, `stats`, `truncated`) are
/// directly comparable across mechanisms — that is what the examples'
/// plain-vs-faithful contrasts rely on. Mechanism-specific detail lives
/// in [`RunReport::outcome`], with panic-free accessors for the usual
/// questions.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Realized utility per topology node.
    pub utilities: Vec<Money>,
    /// Whether anything flagged the run. For the faithful mechanism this
    /// is real enforcement (restarts, halt, penalties, MAC failures); for
    /// plain FPSS it means the converged tables visibly diverged from the
    /// centralized reference (observable, but nobody acts on it — the
    /// paper's point).
    pub detected: bool,
    /// Simulator traffic statistics for the whole lifecycle.
    pub stats: NetStats,
    /// Virtual time at which the run settled — the basis for detection-
    /// latency comparisons across network models.
    pub final_time: SimTime,
    /// Whether the event budget truncated the run.
    pub truncated: bool,
    /// Mechanism-specific detail.
    pub outcome: MechanismOutcome,
}

impl RunReport {
    pub(crate) fn from_plain(run: PlainRunResult) -> Self {
        RunReport {
            utilities: run.utilities,
            detected: !run.tables_match_centralized,
            stats: run.stats,
            final_time: run.final_time,
            truncated: run.truncated,
            outcome: MechanismOutcome::Plain {
                tables_match_centralized: run.tables_match_centralized,
            },
        }
    }

    pub(crate) fn from_faithful(run: FaithfulRunResult) -> Self {
        RunReport {
            utilities: run.utilities,
            detected: run.detected,
            stats: run.stats,
            final_time: run.final_time,
            truncated: run.truncated,
            outcome: MechanismOutcome::Faithful {
                green_lighted: run.green_lighted,
                halted: run.halted,
                restarts: run.restarts,
                penalties: run.penalties,
                tables_match_centralized: run.tables_match_centralized,
            },
        }
    }

    /// Whether execution was reached: the bank's green light for faithful
    /// runs, always `true` for plain runs (plain FPSS has no gate).
    pub fn green_lighted(&self) -> bool {
        match &self.outcome {
            MechanismOutcome::Plain { .. } => true,
            MechanismOutcome::Faithful { green_lighted, .. } => *green_lighted,
        }
    }

    /// Whether the mechanism halted. Always `false` for plain runs.
    pub fn halted(&self) -> bool {
        match &self.outcome {
            MechanismOutcome::Plain { .. } => false,
            MechanismOutcome::Faithful { halted, .. } => *halted,
        }
    }

    /// Construction restarts. Always `0` for plain runs.
    pub fn restarts(&self) -> u32 {
        match &self.outcome {
            MechanismOutcome::Plain { .. } => 0,
            MechanismOutcome::Faithful { restarts, .. } => *restarts,
        }
    }

    /// Penalties charged per node. Empty for plain runs (plain FPSS never
    /// charges penalties).
    pub fn penalties(&self) -> &[Money] {
        match &self.outcome {
            MechanismOutcome::Plain { .. } => &[],
            MechanismOutcome::Faithful { penalties, .. } => penalties,
        }
    }

    /// Total messages delivered.
    pub fn delivered(&self) -> u64 {
        self.stats.msgs_delivered
    }

    /// Messages lost to the network model or dynamics (loss, downed
    /// nodes, partitions). Zero under
    /// [`NetModel::Ideal`](specfaith_netsim::NetModel::Ideal) with no
    /// dynamics.
    pub fn dropped(&self) -> u64 {
        self.stats.msgs_dropped
    }

    /// In-flight deliveries re-scheduled by a throughput model reacting
    /// to load changes (`SharedThroughput` only).
    pub fn rescheduled(&self) -> u64 {
        self.stats.deliveries_rescheduled
    }

    /// High-water mark of simultaneous in-flight work in the simulator's
    /// event queue.
    pub fn max_queue_depth(&self) -> u64 {
        self.stats.max_queue_depth
    }

    /// Whether converged tables matched the centralized reference:
    /// `Some(_)` for plain runs and for faithful runs that green-lighted;
    /// `None` for faithful runs that halted before certifying any tables
    /// (where the bank's hash checkpoints already flagged the run).
    pub fn tables_match_centralized(&self) -> Option<bool> {
        match &self.outcome {
            MechanismOutcome::Plain {
                tables_match_centralized,
            } => Some(*tables_match_centralized),
            MechanismOutcome::Faithful {
                tables_match_centralized,
                ..
            } => *tables_match_centralized,
        }
    }
}

/// The result of a [`Scenario::sweep`](super::Scenario::sweep): one
/// [`EquilibriumReport`] per seed, in the caller's seed order.
///
/// Equality is exact (delegating to [`EquilibriumReport`]'s field-wise
/// equality) — the determinism guarantee "parallel ≡ serial" is literally
/// `assert_eq!` on two of these.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// `(seed, report)` per swept seed.
    pub per_seed: Vec<(u64, EquilibriumReport)>,
}

impl SweepReport {
    /// The per-seed reports.
    pub fn reports(&self) -> impl Iterator<Item = &EquilibriumReport> {
        self.per_seed.iter().map(|(_, report)| report)
    }

    /// Ex post Nash across every swept seed.
    pub fn is_ex_post_nash(&self) -> bool {
        self.reports().all(EquilibriumReport::is_ex_post_nash)
    }

    /// Strong-CC across every swept seed.
    pub fn strong_cc_holds(&self) -> bool {
        self.reports().all(EquilibriumReport::strong_cc_holds)
    }

    /// Strong-AC across every swept seed.
    pub fn strong_ac_holds(&self) -> bool {
        self.reports().all(EquilibriumReport::strong_ac_holds)
    }

    /// IC across every swept seed.
    pub fn ic_holds(&self) -> bool {
        self.reports().all(EquilibriumReport::ic_holds)
    }

    /// Total `(node, deviation)` cells tested across all seeds (excluding
    /// the per-seed faithful baselines).
    pub fn total_deviations(&self) -> usize {
        self.reports().map(|r| r.outcomes.len()).sum()
    }

    /// Every strictly profitable deviation, with the seed it appeared
    /// under.
    pub fn violations(&self) -> impl Iterator<Item = (u64, &DeviationOutcome)> {
        self.per_seed
            .iter()
            .flat_map(|(seed, report)| report.violations().map(move |v| (*seed, v)))
    }

    /// Fraction of tested cells flagged by enforcement, `None` when the
    /// sweep was empty.
    pub fn detection_rate(&self) -> Option<f64> {
        let total = self.total_deviations();
        if total == 0 {
            return None;
        }
        let detected: usize = self
            .reports()
            .map(|r| r.outcomes.iter().filter(|o| o.detected).count())
            .sum();
        Some(detected as f64 / total as f64)
    }

    /// The canonical JSON rendering of this report: compact (no
    /// whitespace), fields in a fixed order, integer money values — the
    /// byte string [`SweepReport::fingerprint`] hashes. Two reports
    /// render identically iff they are `==`, so "merged fragments are
    /// byte-identical to the single-process sweep" is checkable either
    /// in-process (`assert_eq!`) or across machines (fingerprint
    /// comparison, as the CI `sweep-merge` job does).
    pub fn to_canonical_json(&self) -> String {
        use super::shard::spec_to_json;
        let mut out = String::from("{\"format\":\"specfaith-sweep-report-v1\",\"per_seed\":[");
        for (i, (seed, report)) in self.per_seed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"seed\":{seed},\"faithful_utilities\":[{}],\"outcomes\":[",
                report
                    .faithful_utilities
                    .iter()
                    .map(|m| m.value().to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ));
            for (j, outcome) in report.outcomes.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"agent\":{},\"deviation\":{},\"faithful_utility\":{},\
                     \"deviant_utility\":{},\"detected\":{}}}",
                    outcome.agent,
                    spec_to_json(&outcome.deviation),
                    outcome.faithful_utility.value(),
                    outcome.deviant_utility.value(),
                    outcome.detected
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// A deterministic content fingerprint (`fnv1a64:` + 16 hex digits)
    /// over [`SweepReport::to_canonical_json`]. Equal reports — e.g. a
    /// merged shard set and the single-process sweep — always share it;
    /// CI pins the sharded quick sweep's merged fingerprint against a
    /// committed baseline on every PR.
    pub fn fingerprint(&self) -> String {
        format!(
            "fnv1a64:{:016x}",
            super::shard::fnv1a64(self.to_canonical_json().as_bytes())
        )
    }

    /// Converts into the labeled [`EquilibriumSuite`] the certificate
    /// assembly expects, labeling each report `seed-<seed>`.
    pub fn to_suite(&self) -> EquilibriumSuite {
        let mut suite = EquilibriumSuite::new();
        for (seed, report) in &self.per_seed {
            suite.push(format!("seed-{seed}"), report.clone());
        }
        suite
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} seeds, {} deviation cells; ex post Nash: {}, strong-CC: {}, strong-AC: {}, IC: {}",
            self.per_seed.len(),
            self.total_deviations(),
            self.is_ex_post_nash(),
            self.strong_cc_holds(),
            self.strong_ac_holds(),
            self.ic_holds()
        )?;
        for (seed, violation) in self.violations() {
            writeln!(
                f,
                "  VIOLATION [seed {seed}]: agent {} gains {} via {}",
                violation.agent,
                violation.gain(),
                violation.deviation
            )?;
        }
        Ok(())
    }
}
