//! Sharded sweep execution: deterministic grid partitioning, serializable
//! per-shard fragments, and the conflict-detecting merge.
//!
//! The full `(seed × agent × deviation)` grid at production scale is out
//! of reach for one machine (the `n = 1024` full catalog is ~13k cells of
//! minutes each). Per-cell seed derivation ([`cell_seed`]) already makes
//! every cell order-independent and byte-identical, so the grid shards
//! cleanly across processes — and, with fragments serialized to JSON,
//! across machines:
//!
//! 1. **Partition.** [`ShardSpec`] names one shard of an `N`-way split.
//!    Cells are assigned by *stride* — shard `i` of `N` owns the grid
//!    indices `{c | c ≡ i (mod N)}` — so every shard draws cells from the
//!    whole grid instead of one contiguous band (deviation cost varies by
//!    catalog position; striding balances the skew). The partition is a
//!    disjoint exact cover of the grid for every `N`, including `N`
//!    larger than the cell count (excess shards are simply empty).
//! 2. **Execute.** [`Scenario::sweep_shard`] evaluates exactly the owned
//!    cells (plus every seed's honest baseline — see below) and returns a
//!    [`SweepFragment`]: the evaluated cells with their global grid
//!    indices, the baselines, a manifest identifying the grid, and a
//!    per-shard timing summary for skew diagnostics.
//! 3. **Merge.** [`SweepFragment::merge`] recombines fragments into the
//!    [`SweepReport`] the single-process sweep produces — byte-identical,
//!    which the workspace pins by integration test and by the CI
//!    `sweep-shards` → `sweep-merge` job pair — rejecting fragments that
//!    disagree ([`MergeError`]).
//!
//! # Why every shard re-runs the honest baselines
//!
//! A shard's deviation cells need the honest [`RouteCache`] anyway (the
//! reference tables every non-misreporting cell shares), and the honest
//! run per seed is a vanishing fraction of a shard's cell work. Carrying
//! the full baseline set in every fragment buys two things: any *subset*
//! of fragments is self-describing, and the merge gets a free cross-shard
//! determinism check — all fragments must report bit-identical baseline
//! utility vectors or the merge refuses ([`MergeError::BaselineConflict`]).
//!
//! # Fragment JSON
//!
//! Fragments serialize to a flat JSON document (`format:
//! "specfaith-sweep-fragment-v1"`) via [`SweepFragment::to_json`] /
//! [`SweepFragment::from_json`] — hand-rolled, since the offline
//! dependency set has no serde. The manifest fields (`instance`,
//! `instance_fingerprint`, `seeds`, `agents`, `deviations`, and
//! `shard.count`) must agree across every fragment of a merge; the
//! `timing` block is informational and never compared. See the
//! `specfaith-bench` crate docs for the field-by-field format notes.
//!
//! [`cell_seed`]: super::sweep::cell_seed
//! [`RouteCache`]: specfaith_graph::cache::RouteCache
//! [`Scenario::sweep_shard`]: super::Scenario::sweep_shard

use super::report::SweepReport;
use super::sweep::{deviation_grid, evaluate, evaluate_baseline, Catalog, CellResult};
use super::Scenario;
use rayon::prelude::*;
use specfaith_core::actions::{DeviationSurface, ExternalActionKind};
use specfaith_core::equilibrium::{DeviationOutcome, DeviationSpec, EquilibriumReport};
use specfaith_core::money::Money;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// The on-disk format tag of a serialized [`SweepFragment`].
pub const FRAGMENT_FORMAT: &str = "specfaith-sweep-fragment-v1";

/// One shard of an `N`-way sweep partition: `index` in `0..count`.
///
/// Parsed from the CLI as `"i/N"` ([`ShardSpec::parse`]); owns the grid
/// cells whose global index is `≡ index (mod count)`
/// ([`ShardSpec::cell_indices`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    index: usize,
    count: usize,
}

impl ShardSpec {
    /// Shard `index` of `count`.
    ///
    /// # Panics
    ///
    /// Panics unless `index < count`.
    pub fn new(index: usize, count: usize) -> Self {
        assert!(
            index < count,
            "shard index {index} out of range for {count} shards"
        );
        ShardSpec { index, count }
    }

    /// Parses `"i/N"` (e.g. `"2/4"`).
    pub fn parse(text: &str) -> Result<Self, String> {
        let (index, count) = text
            .split_once('/')
            .ok_or_else(|| format!("shard spec {text:?} is not of the form i/N"))?;
        let index: usize = index
            .trim()
            .parse()
            .map_err(|e| format!("shard index in {text:?}: {e}"))?;
        let count: usize = count
            .trim()
            .parse()
            .map_err(|e| format!("shard count in {text:?}: {e}"))?;
        if count == 0 {
            return Err(format!("shard spec {text:?} has zero shards"));
        }
        if index >= count {
            return Err(format!("shard spec {text:?}: index must be in 0..{count}"));
        }
        Ok(ShardSpec { index, count })
    }

    /// This shard's position in `0..count()`.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Total shards in the partition.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The global grid indices this shard owns out of `total` cells, in
    /// increasing order: `index, index + count, index + 2·count, …`.
    ///
    /// Across `index in 0..count` the returned sets are a disjoint exact
    /// cover of `0..total`, for every `count ≥ 1` — including
    /// `count > total`, where shards with `index ≥ total` own nothing.
    pub fn cell_indices(&self, total: usize) -> Vec<usize> {
        (self.index..total).step_by(self.count).collect()
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// One evaluated deviation cell inside a [`SweepFragment`].
///
/// `index` is the cell's global grid index (row-major over
/// `seeds × agents × deviations`); the coordinate fields are redundant
/// with it and re-derived at merge time — a mismatch means a corrupted or
/// hand-edited fragment and fails the merge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FragmentCell {
    /// Global grid index of this cell.
    pub index: usize,
    /// The cell's base seed (the swept seed, not the derived cell seed).
    pub seed: u64,
    /// The deviating agent (topology index).
    pub agent: usize,
    /// Index into the manifest's deviation list.
    pub deviation: usize,
    /// The deviant's realized utility in this cell.
    pub deviant_utility: Money,
    /// Whether enforcement flagged the cell.
    pub detected: bool,
}

/// Wall-clock summary of one shard's execution, carried in the fragment
/// for merge-time skew reporting. Informational only: never part of
/// manifest equality or the merged report.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardTiming {
    /// Seconds spent on the per-seed honest baselines.
    pub baseline_secs: f64,
    /// Seconds spent evaluating this shard's deviation cells.
    pub cells_secs: f64,
}

/// The serializable result of one shard of a sweep: manifest, baselines,
/// evaluated cells, and timing. Produced by [`Scenario::sweep_shard`] /
/// [`Scenario::sweep_shard_sampled`]; recombined by
/// [`SweepFragment::merge`].
///
/// [`Scenario::sweep_shard`]: super::Scenario::sweep_shard
/// [`Scenario::sweep_shard_sampled`]: super::Scenario::sweep_shard_sampled
#[derive(Clone, Debug)]
pub struct SweepFragment {
    /// Which shard of how many this fragment is.
    pub shard: ShardSpec,
    /// Caller-chosen grid label (e.g. `"sweep-n64-quick-ideal"`). Must
    /// agree across merged fragments.
    pub instance: String,
    /// Opaque hash of the scenario's topology, true costs, traffic, and
    /// mechanism — a second line of defense against merging fragments
    /// from different instances that happen to share a label.
    pub instance_fingerprint: String,
    /// The swept seeds, in sweep order.
    pub seeds: Vec<u64>,
    /// The swept agents (topology indices), in sweep order.
    pub agents: Vec<usize>,
    /// The catalog's deviation specs, in catalog order.
    pub deviations: Vec<DeviationSpec>,
    /// Per swept seed, the honest baseline's utility vector. Every
    /// fragment carries all seeds' baselines (see the module docs).
    pub baselines: Vec<(u64, Vec<Money>)>,
    /// The cells this shard owns, in increasing grid-index order.
    pub cells: Vec<FragmentCell>,
    /// Execution timing for skew diagnostics.
    pub timing: ShardTiming,
}

/// Why a set of fragments refused to merge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MergeError {
    /// No fragments were given.
    NoFragments,
    /// A fragment's manifest (instance, fingerprint, seeds, agents,
    /// deviations, or shard count) disagrees with the first fragment's.
    ManifestMismatch {
        /// Which field disagreed, and how.
        detail: String,
    },
    /// The shard set is not exactly `{0, …, count−1}` — a shard is
    /// missing or appears twice.
    ShardSetIncomplete {
        /// Human-readable description of the defect.
        detail: String,
    },
    /// Two fragments reported different honest-baseline utilities for the
    /// same seed — a cross-shard determinism violation.
    BaselineConflict {
        /// The seed whose baselines disagreed.
        seed: u64,
    },
    /// The same grid cell appeared in more than one fragment.
    DuplicateCell {
        /// The duplicated global grid index.
        index: usize,
    },
    /// Cells are missing after all fragments were consumed.
    MissingCells {
        /// How many grid cells no fragment carried.
        missing: usize,
        /// The lowest missing grid index.
        first: usize,
    },
    /// A cell's stored coordinates don't match its grid index, or point
    /// outside the manifest's grid.
    MalformedCell {
        /// Human-readable description of the defect.
        detail: String,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::NoFragments => write!(f, "no fragments to merge"),
            MergeError::ManifestMismatch { detail } => {
                write!(f, "fragment manifests disagree: {detail}")
            }
            MergeError::ShardSetIncomplete { detail } => {
                write!(f, "incomplete shard set: {detail}")
            }
            MergeError::BaselineConflict { seed } => write!(
                f,
                "fragments disagree on the honest baseline of seed {seed} \
                 (cross-shard determinism violation)"
            ),
            MergeError::DuplicateCell { index } => {
                write!(f, "grid cell {index} appears in more than one fragment")
            }
            MergeError::MissingCells { missing, first } => write!(
                f,
                "{missing} grid cell(s) missing from the merged fragments \
                 (first missing index: {first})"
            ),
            MergeError::MalformedCell { detail } => write!(f, "malformed cell: {detail}"),
        }
    }
}

impl std::error::Error for MergeError {}

impl SweepFragment {
    /// Total cells of the full grid this fragment was partitioned from.
    pub fn grid_cells(&self) -> usize {
        self.seeds.len() * self.agents.len() * self.deviations.len()
    }

    /// Cells per second of this shard's deviation-cell phase (`None` for
    /// an empty shard or unmeasurably fast one).
    pub fn cells_per_sec(&self) -> Option<f64> {
        if self.cells.is_empty() || self.timing.cells_secs <= 0.0 {
            return None;
        }
        Some(self.cells.len() as f64 / self.timing.cells_secs)
    }

    /// Recombines shard fragments into the [`SweepReport`] the
    /// single-process sweep produces, byte-identical.
    ///
    /// Fragment order does not matter. The merge fails
    /// ([`MergeError`]) unless the fragments have identical manifests,
    /// form the complete shard set `{0, …, count−1}`, agree on every
    /// baseline, and cover every grid cell exactly once.
    pub fn merge(fragments: &[SweepFragment]) -> Result<SweepReport, MergeError> {
        let first = fragments.first().ok_or(MergeError::NoFragments)?;

        // Manifest agreement.
        for fragment in &fragments[1..] {
            let mismatch = |field: &str, a: &dyn fmt::Debug, b: &dyn fmt::Debug| {
                Err(MergeError::ManifestMismatch {
                    detail: format!(
                        "{field} of shard {} ({b:?}) vs shard {} ({a:?})",
                        fragment.shard, first.shard
                    ),
                })
            };
            if fragment.instance != first.instance {
                return mismatch("instance", &first.instance, &fragment.instance);
            }
            if fragment.instance_fingerprint != first.instance_fingerprint {
                return mismatch(
                    "instance_fingerprint",
                    &first.instance_fingerprint,
                    &fragment.instance_fingerprint,
                );
            }
            if fragment.seeds != first.seeds {
                return mismatch("seeds", &first.seeds, &fragment.seeds);
            }
            if fragment.agents != first.agents {
                return mismatch("agents", &first.agents, &fragment.agents);
            }
            if fragment.deviations != first.deviations {
                return mismatch("deviations", &first.deviations, &fragment.deviations);
            }
            if fragment.shard.count() != first.shard.count() {
                return mismatch("shard count", &first.shard, &fragment.shard);
            }
        }

        // Complete shard set: every index 0..count exactly once.
        let count = first.shard.count();
        let mut present = vec![false; count];
        for fragment in fragments {
            let index = fragment.shard.index();
            if index >= count {
                return Err(MergeError::ShardSetIncomplete {
                    detail: format!("shard index {index} out of range for {count} shards"),
                });
            }
            if present[index] {
                return Err(MergeError::ShardSetIncomplete {
                    detail: format!("shard {index}/{count} appears twice"),
                });
            }
            present[index] = true;
        }
        if let Some(absent) = present.iter().position(|p| !p) {
            return Err(MergeError::ShardSetIncomplete {
                detail: format!("shard {absent}/{count} is missing"),
            });
        }

        // Baseline agreement (every fragment carries every seed's
        // baseline; bit-identity across shards is the determinism check).
        for fragment in fragments {
            if fragment.baselines.len() != first.seeds.len()
                || fragment
                    .baselines
                    .iter()
                    .map(|(seed, _)| *seed)
                    .ne(first.seeds.iter().copied())
            {
                return Err(MergeError::ManifestMismatch {
                    detail: format!(
                        "shard {} baselines cover seeds {:?}, expected {:?}",
                        fragment.shard,
                        fragment
                            .baselines
                            .iter()
                            .map(|(seed, _)| *seed)
                            .collect::<Vec<_>>(),
                        first.seeds
                    ),
                });
            }
            for ((seed, utilities), (_, reference)) in
                fragment.baselines.iter().zip(&first.baselines)
            {
                if utilities != reference {
                    return Err(MergeError::BaselineConflict { seed: *seed });
                }
            }
        }

        // Exact cover: place every cell at its grid index, rejecting
        // duplicates and coordinate/index disagreements.
        let deviations = first.deviations.len();
        let agents = first.agents.len();
        let total = first.grid_cells();
        let mut grid: Vec<Option<&FragmentCell>> = vec![None; total];
        for fragment in fragments {
            for cell in &fragment.cells {
                if cell.index >= total {
                    return Err(MergeError::MalformedCell {
                        detail: format!("cell index {} outside the {total}-cell grid", cell.index),
                    });
                }
                let seed_index = cell.index / (agents * deviations);
                let agent_pos = (cell.index / deviations) % agents;
                let deviation = cell.index % deviations;
                let expected = (first.seeds[seed_index], first.agents[agent_pos], deviation);
                if (cell.seed, cell.agent, cell.deviation) != expected {
                    return Err(MergeError::MalformedCell {
                        detail: format!(
                            "cell {} claims (seed {}, agent {}, deviation {}), \
                             grid index implies (seed {}, agent {}, deviation {})",
                            cell.index,
                            cell.seed,
                            cell.agent,
                            cell.deviation,
                            expected.0,
                            expected.1,
                            expected.2
                        ),
                    });
                }
                if grid[cell.index].is_some() {
                    return Err(MergeError::DuplicateCell { index: cell.index });
                }
                grid[cell.index] = Some(cell);
            }
        }
        let missing = grid.iter().filter(|slot| slot.is_none()).count();
        if missing > 0 {
            let fallback = total; // unreachable: missing > 0 implies a None
            return Err(MergeError::MissingCells {
                missing,
                first: grid
                    .iter()
                    .position(|slot| slot.is_none())
                    .unwrap_or(fallback),
            });
        }

        // Assembly, in grid (row-major) order — exactly what the
        // single-process sweep's `assemble` produces.
        let mut reports: Vec<EquilibriumReport> = first
            .baselines
            .iter()
            .map(|(_, utilities)| EquilibriumReport {
                faithful_utilities: utilities.clone(),
                outcomes: Vec::with_capacity(agents * deviations),
            })
            .collect();
        for cell in grid.into_iter().flatten() {
            let seed_index = cell.index / (agents * deviations);
            reports[seed_index].outcomes.push(DeviationOutcome {
                agent: cell.agent,
                deviation: first.deviations[cell.deviation].clone(),
                faithful_utility: first.baselines[seed_index].1[cell.agent],
                deviant_utility: cell.deviant_utility,
                detected: cell.detected,
            });
        }
        Ok(SweepReport {
            per_seed: first.seeds.iter().copied().zip(reports).collect(),
        })
    }

    /// A one-line-per-shard skew table over a merged fragment set: cells,
    /// seconds, and throughput per shard, plus the max/min throughput
    /// ratio — the number a future multi-machine scheduler would balance.
    pub fn skew_summary(fragments: &[SweepFragment]) -> String {
        let mut lines = String::new();
        let mut rates: Vec<f64> = Vec::new();
        let mut ordered: Vec<&SweepFragment> = fragments.iter().collect();
        ordered.sort_by_key(|fragment| fragment.shard.index());
        for fragment in ordered {
            let rate = fragment.cells_per_sec();
            if let Some(rate) = rate {
                rates.push(rate);
            }
            lines.push_str(&format!(
                "  shard {}: {} cells in {:.3}s ({}; baseline {:.3}s)\n",
                fragment.shard,
                fragment.cells.len(),
                fragment.timing.cells_secs,
                match rate {
                    Some(rate) => format!("{rate:.2} cells/s"),
                    None => "idle".to_string(),
                },
                fragment.timing.baseline_secs,
            ));
        }
        let skew = match (
            rates.iter().cloned().reduce(f64::max),
            rates.iter().cloned().reduce(f64::min),
        ) {
            (Some(max), Some(min)) if min > 0.0 => format!("{:.2}", max / min),
            _ => "n/a".to_string(),
        };
        lines.push_str(&format!("  throughput skew (max/min): {skew}\n"));
        lines
    }

    /// Serializes the fragment to its JSON document (see the module
    /// docs for the format).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 64 * self.cells.len());
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"format\": {},\n",
            json_string(FRAGMENT_FORMAT)
        ));
        out.push_str(&format!(
            "  \"shard\": {{\"index\": {}, \"count\": {}}},\n",
            self.shard.index(),
            self.shard.count()
        ));
        out.push_str(&format!(
            "  \"instance\": {},\n",
            json_string(&self.instance)
        ));
        out.push_str(&format!(
            "  \"instance_fingerprint\": {},\n",
            json_string(&self.instance_fingerprint)
        ));
        out.push_str(&format!(
            "  \"seeds\": [{}],\n",
            join(self.seeds.iter().map(u64::to_string))
        ));
        out.push_str(&format!(
            "  \"agents\": [{}],\n",
            join(self.agents.iter().map(usize::to_string))
        ));
        out.push_str(&format!(
            "  \"deviations\": [\n    {}\n  ],\n",
            join_sep(self.deviations.iter().map(spec_to_json), ",\n    ")
        ));
        out.push_str(&format!(
            "  \"baselines\": [\n    {}\n  ],\n",
            join_sep(
                self.baselines.iter().map(|(seed, utilities)| format!(
                    "{{\"seed\": {seed}, \"utilities\": [{}]}}",
                    join(utilities.iter().map(|m| m.value().to_string()))
                )),
                ",\n    "
            )
        ));
        out.push_str(&format!(
            "  \"cells\": [\n    {}\n  ],\n",
            join_sep(
                self.cells.iter().map(|cell| format!(
                    "{{\"index\": {}, \"seed\": {}, \"agent\": {}, \"deviation\": {}, \
                     \"deviant_utility\": {}, \"detected\": {}}}",
                    cell.index,
                    cell.seed,
                    cell.agent,
                    cell.deviation,
                    cell.deviant_utility.value(),
                    cell.detected
                )),
                ",\n    "
            )
        ));
        out.push_str(&format!(
            "  \"timing\": {{\"baseline_secs\": {:.3}, \"cells_secs\": {:.3}, \"cells\": {}}}\n",
            self.timing.baseline_secs,
            self.timing.cells_secs,
            self.cells.len()
        ));
        out.push_str("}\n");
        out
    }

    /// Parses a fragment from its JSON document. Tolerates unknown keys;
    /// rejects wrong `format` tags and structural defects with a message.
    pub fn from_json(json: &str) -> Result<SweepFragment, String> {
        let value = Json::parse(json)?;
        let top = value.as_object("fragment")?;
        let format = get(top, "format")?.as_str("format")?;
        if format != FRAGMENT_FORMAT {
            return Err(format!(
                "fragment format {format:?} is not {FRAGMENT_FORMAT:?}"
            ));
        }
        let shard_obj = get(top, "shard")?.as_object("shard")?;
        let index = get(shard_obj, "index")?.as_usize("shard.index")?;
        let count = get(shard_obj, "count")?.as_usize("shard.count")?;
        if index >= count {
            return Err(format!("shard index {index} out of range for {count}"));
        }
        let seeds = get(top, "seeds")?
            .as_array("seeds")?
            .iter()
            .map(|v| v.as_u64("seed"))
            .collect::<Result<Vec<_>, _>>()?;
        let agents = get(top, "agents")?
            .as_array("agents")?
            .iter()
            .map(|v| v.as_usize("agent"))
            .collect::<Result<Vec<_>, _>>()?;
        let deviations = get(top, "deviations")?
            .as_array("deviations")?
            .iter()
            .map(spec_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let baselines = get(top, "baselines")?
            .as_array("baselines")?
            .iter()
            .map(|v| {
                let obj = v.as_object("baseline")?;
                let seed = get(obj, "seed")?.as_u64("baseline.seed")?;
                let utilities = get(obj, "utilities")?
                    .as_array("baseline.utilities")?
                    .iter()
                    .map(|v| Ok(Money::new(v.as_i64("utility")?)))
                    .collect::<Result<Vec<_>, String>>()?;
                Ok((seed, utilities))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let cells = get(top, "cells")?
            .as_array("cells")?
            .iter()
            .map(|v| {
                let obj = v.as_object("cell")?;
                Ok(FragmentCell {
                    index: get(obj, "index")?.as_usize("cell.index")?,
                    seed: get(obj, "seed")?.as_u64("cell.seed")?,
                    agent: get(obj, "agent")?.as_usize("cell.agent")?,
                    deviation: get(obj, "deviation")?.as_usize("cell.deviation")?,
                    deviant_utility: Money::new(
                        get(obj, "deviant_utility")?.as_i64("cell.deviant_utility")?,
                    ),
                    detected: get(obj, "detected")?.as_bool("cell.detected")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let timing_obj = get(top, "timing")?.as_object("timing")?;
        let timing = ShardTiming {
            baseline_secs: get(timing_obj, "baseline_secs")?.as_f64("timing.baseline_secs")?,
            cells_secs: get(timing_obj, "cells_secs")?.as_f64("timing.cells_secs")?,
        };
        Ok(SweepFragment {
            shard: ShardSpec::new(index, count),
            instance: get(top, "instance")?.as_str("instance")?.to_string(),
            instance_fingerprint: get(top, "instance_fingerprint")?
                .as_str("instance_fingerprint")?
                .to_string(),
            seeds,
            agents,
            deviations,
            baselines,
            cells,
            timing,
        })
    }
}

/// Executes one shard: every seed's honest baseline plus exactly the
/// deviation cells `shard` owns, in parallel. Called via
/// [`Scenario::sweep_shard`] / [`Scenario::sweep_shard_sampled`], which
/// thread in a fresh sweep-scoped cache registry first.
///
/// [`Scenario::sweep_shard`]: super::Scenario::sweep_shard
/// [`Scenario::sweep_shard_sampled`]: super::Scenario::sweep_shard_sampled
pub(super) fn run_shard(
    scenario: &Scenario,
    seeds: &[u64],
    catalog: &Catalog,
    agents: &[usize],
    shard: ShardSpec,
    instance: &str,
) -> SweepFragment {
    let specs = catalog.specs();
    // Unconditional pin, exactly as in `sweep_agents`: protects the
    // honest cache from eager release and marks it as the seed base that
    // misreport cells repair their caches from.
    let _ = scenario
        .route_scope()
        .pin(scenario.topology(), scenario.costs());
    let started = Instant::now();
    let baselines: Vec<Arc<CellResult>> = seeds
        .par_iter()
        .map(|&base_seed| Arc::new(evaluate_baseline(scenario, base_seed)))
        .collect();
    let baseline_secs = started.elapsed().as_secs_f64();

    let grid = deviation_grid(seeds, agents, specs.len());
    let owned: Vec<usize> = shard.cell_indices(grid.len());
    let started = Instant::now();
    let results: Vec<CellResult> = owned
        .par_iter()
        .map(|&index| evaluate(scenario, catalog, &grid[index]))
        .collect();
    let cells_secs = started.elapsed().as_secs_f64();

    let cells = owned
        .iter()
        .zip(results)
        .map(|(&index, result)| {
            let cell = &grid[index];
            FragmentCell {
                index,
                seed: cell.base_seed,
                agent: cell.agent,
                deviation: cell.deviation,
                deviant_utility: result.utilities[cell.agent],
                detected: result.detected,
            }
        })
        .collect();
    SweepFragment {
        shard,
        instance: instance.to_string(),
        instance_fingerprint: instance_fingerprint(scenario),
        seeds: seeds.to_vec(),
        agents: agents.to_vec(),
        deviations: specs,
        baselines: seeds
            .iter()
            .zip(&baselines)
            .map(|(&seed, baseline)| (seed, baseline.utilities.clone()))
            .collect(),
        cells,
        timing: ShardTiming {
            baseline_secs,
            cells_secs,
        },
    }
}

/// An opaque identity hash of the scenario's instance (topology, true
/// costs, traffic, mechanism) — merge-conflict detection only, not a
/// stable cross-version format.
pub(crate) fn instance_fingerprint(scenario: &Scenario) -> String {
    let description = format!(
        "{:?}|{:?}|{:?}|{:?}",
        scenario.topology(),
        scenario.costs(),
        scenario.traffic(),
        scenario.mechanism()
    );
    format!("fnv1a64:{:016x}", fnv1a64(description.as_bytes()))
}

/// FNV-1a, 64-bit — the workspace's canonical cheap content hash for
/// fingerprints (fragments, merged reports). Not cryptographic.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// DeviationSpec (de)serialization — shared with the canonical report form.

fn kind_name(kind: ExternalActionKind) -> &'static str {
    match kind {
        ExternalActionKind::InformationRevelation => "information-revelation",
        ExternalActionKind::MessagePassing => "message-passing",
        ExternalActionKind::Computation => "computation",
    }
}

fn kind_from_name(name: &str) -> Result<ExternalActionKind, String> {
    ExternalActionKind::ALL
        .into_iter()
        .find(|kind| kind_name(*kind) == name)
        .ok_or_else(|| format!("unknown action kind {name:?}"))
}

pub(crate) fn spec_to_json(spec: &DeviationSpec) -> String {
    let surface = join(
        spec.surface()
            .kinds()
            .map(|kind| json_string(kind_name(kind))),
    );
    let phase = match spec.phase() {
        Some(phase) => json_string(phase),
        None => "null".to_string(),
    };
    format!(
        "{{\"name\": {}, \"surface\": [{surface}], \"phase\": {phase}}}",
        json_string(spec.name())
    )
}

pub(crate) fn spec_from_json(value: &Json) -> Result<DeviationSpec, String> {
    let obj = value.as_object("deviation spec")?;
    let name = get(obj, "name")?.as_str("spec.name")?;
    let mut surface = DeviationSurface::new();
    for kind in get(obj, "surface")?.as_array("spec.surface")? {
        surface = surface.with(kind_from_name(kind.as_str("surface kind")?)?);
    }
    let mut spec = DeviationSpec::new(name, surface);
    match get(obj, "phase")? {
        Json::Null => {}
        phase => spec = spec.in_phase(phase.as_str("spec.phase")?),
    }
    Ok(spec)
}

fn join(items: impl Iterator<Item = String>) -> String {
    join_sep(items, ", ")
}

fn join_sep(items: impl Iterator<Item = String>, separator: &str) -> String {
    items.collect::<Vec<_>>().join(separator)
}

/// JSON string literal with the escapes this workspace's names can need.
pub(crate) fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// A minimal JSON reader. The offline dependency set has no serde; this
// covers exactly the documents this workspace writes (and tolerates
// hand-edited whitespace/unknown keys). Integers parse exactly (i128
// accumulator), so u64 seeds and i64 utilities round-trip losslessly.

#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Json {
    Null,
    Bool(bool),
    Int(i128),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn parse(text: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            at: 0,
            depth: 0,
        };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.at != parser.bytes.len() {
            return Err(format!("trailing content at byte {}", parser.at));
        }
        Ok(value)
    }

    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) => "integer",
            Json::Float(_) => "float",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    pub(crate) fn as_object(&self, what: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Obj(entries) => Ok(entries),
            other => Err(format!(
                "{what}: expected object, got {}",
                other.type_name()
            )),
        }
    }

    pub(crate) fn as_array(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(format!("{what}: expected array, got {}", other.type_name())),
        }
    }

    pub(crate) fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(text) => Ok(text),
            other => Err(format!(
                "{what}: expected string, got {}",
                other.type_name()
            )),
        }
    }

    pub(crate) fn as_bool(&self, what: &str) -> Result<bool, String> {
        match self {
            Json::Bool(value) => Ok(*value),
            other => Err(format!("{what}: expected bool, got {}", other.type_name())),
        }
    }

    fn as_i128(&self, what: &str) -> Result<i128, String> {
        match self {
            Json::Int(value) => Ok(*value),
            other => Err(format!(
                "{what}: expected integer, got {}",
                other.type_name()
            )),
        }
    }

    pub(crate) fn as_u64(&self, what: &str) -> Result<u64, String> {
        u64::try_from(self.as_i128(what)?).map_err(|_| format!("{what}: out of u64 range"))
    }

    pub(crate) fn as_i64(&self, what: &str) -> Result<i64, String> {
        i64::try_from(self.as_i128(what)?).map_err(|_| format!("{what}: out of i64 range"))
    }

    pub(crate) fn as_usize(&self, what: &str) -> Result<usize, String> {
        usize::try_from(self.as_i128(what)?).map_err(|_| format!("{what}: out of usize range"))
    }

    pub(crate) fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Int(value) => Ok(*value as f64),
            Json::Float(value) => Ok(*value),
            other => Err(format!(
                "{what}: expected number, got {}",
                other.type_name()
            )),
        }
    }
}

pub(crate) fn get<'a>(entries: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    entries
        .iter()
        .find(|(name, _)| name == key)
        .map(|(_, value)| value)
        .ok_or_else(|| format!("missing key {key:?}"))
}

/// Nesting ceiling for [`Parser`]. The documents this workspace writes
/// nest four levels deep; anything past this is adversarial input, and
/// unbounded recursion would turn it into a stack overflow (an abort, not
/// a catchable error).
const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&byte) = self.bytes.get(self.at) {
            if matches!(byte, b' ' | b'\t' | b'\n' | b'\r') {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Result<u8, String> {
        self.bytes
            .get(self.at)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek()? == byte {
            self.at += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                byte as char, self.at, self.bytes[self.at] as char
            ))
        }
    }

    fn literal(&mut self, text: &str) -> Result<(), String> {
        if self.bytes[self.at..].starts_with(text.as_bytes()) {
            self.at += text.len();
            Ok(())
        } else {
            Err(format!("invalid literal at byte {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        if self.depth >= MAX_PARSE_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_PARSE_DEPTH} at byte {}",
                self.at
            ));
        }
        self.depth += 1;
        let value = match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true").map(|()| Json::Bool(true)),
            b'f' => self.literal("false").map(|()| Json::Bool(false)),
            b'n' => self.literal("null").map(|()| Json::Null),
            _ => self.number(),
        };
        self.depth -= 1;
        value
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek()? == b'}' {
            self.at += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek()? {
                b',' => self.at += 1,
                b'}' => {
                    self.at += 1;
                    return Ok(Json::Obj(entries));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.at, other as char
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek()? == b']' {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek()? {
                b',' => self.at += 1,
                b']' => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.at, other as char
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let byte = self.peek()?;
            self.at += 1;
            match byte {
                b'"' => return Ok(out),
                b'\\' => {
                    let escape = self.peek()?;
                    self.at += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let end = self.at + 4;
                            let hex = self
                                .bytes
                                .get(self.at..end)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape {hex:?}"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("\\u{hex} is not a scalar value"))?,
                            );
                            self.at = end;
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting here.
                    let start = self.at - 1;
                    let mut end = self.at;
                    while end < self.bytes.len() && self.bytes[end] & 0b1100_0000 == 0b1000_0000 {
                        end += 1;
                    }
                    let text = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))?;
                    out.push_str(text);
                    self.at = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek()? == b'-' {
            self.at += 1;
        }
        let mut is_float = false;
        while let Some(&byte) = self.bytes.get(self.at) {
            match byte {
                b'0'..=b'9' => self.at += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.at += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| "non-ascii number".to_string())?;
        if text.is_empty() || text == "-" {
            return Err(format!("invalid number at byte {start}"));
        }
        if is_float {
            text.parse()
                .map(Json::Float)
                .map_err(|e| format!("invalid number {text:?}: {e}"))
        } else {
            text.parse()
                .map(Json::Int)
                .map_err(|e| format!("invalid number {text:?}: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Mechanism, TopologySource, TrafficModel};

    fn tiny_scenario() -> Scenario {
        Scenario::builder()
            .topology(TopologySource::Figure1)
            .traffic(TrafficModel::single_by_index(5, 4, 3))
            .mechanism(Mechanism::faithful())
            .build()
    }

    fn small_catalog() -> Catalog {
        use specfaith_core::id::NodeId;
        use specfaith_fpss::deviation::standard_catalog;
        let _ = NodeId::new(0);
        Catalog::from_factory(|deviant| standard_catalog(deviant).into_iter().take(2).collect())
    }

    #[test]
    fn shard_spec_parses_and_rejects() {
        let shard = ShardSpec::parse("2/4").expect("valid");
        assert_eq!((shard.index(), shard.count()), (2, 4));
        assert_eq!(shard.to_string(), "2/4");
        assert!(ShardSpec::parse("4/4").is_err());
        assert!(ShardSpec::parse("0/0").is_err());
        assert!(ShardSpec::parse("banana").is_err());
        assert!(ShardSpec::parse("1").is_err());
    }

    #[test]
    fn stride_partition_is_disjoint_exact_cover() {
        for total in [0usize, 1, 7, 52] {
            for count in [1usize, 2, 3, 5, 60] {
                let mut seen = vec![0u32; total];
                for index in 0..count {
                    for cell in ShardSpec::new(index, count).cell_indices(total) {
                        seen[cell] += 1;
                    }
                }
                assert!(
                    seen.iter().all(|&hits| hits == 1),
                    "total {total}, count {count}: {seen:?}"
                );
            }
        }
    }

    #[test]
    fn fragments_merge_back_to_the_monolithic_report() {
        let scenario = tiny_scenario();
        let catalog = small_catalog();
        let seeds = [11u64, 12];
        let monolithic = scenario.sweep(&seeds, &catalog);
        let fragments: Vec<SweepFragment> = (0..3)
            .map(|index| scenario.sweep_shard(&seeds, &catalog, ShardSpec::new(index, 3), "tiny"))
            .collect();
        let merged = SweepFragment::merge(&fragments).expect("clean merge");
        assert_eq!(merged, monolithic);
        // Order-independence: reversed fragments merge identically.
        let mut reversed = fragments.clone();
        reversed.reverse();
        assert_eq!(SweepFragment::merge(&reversed).expect("merge"), monolithic);
    }

    #[test]
    fn more_shards_than_cells_still_merge_exactly() {
        let scenario = tiny_scenario();
        let catalog = small_catalog();
        let seeds = [5u64];
        let total = scenario.num_nodes() * catalog.len();
        let count = total + 3; // some shards own nothing
        let fragments: Vec<SweepFragment> = (0..count)
            .map(|index| {
                scenario.sweep_shard(&seeds, &catalog, ShardSpec::new(index, count), "tiny")
            })
            .collect();
        assert!(fragments.iter().any(|fragment| fragment.cells.is_empty()));
        let merged = SweepFragment::merge(&fragments).expect("clean merge");
        assert_eq!(merged, scenario.sweep(&seeds, &catalog));
    }

    #[test]
    fn fragment_json_round_trips() {
        let scenario = tiny_scenario();
        let catalog = small_catalog();
        let fragment = scenario.sweep_shard(&[3], &catalog, ShardSpec::new(1, 2), "tiny");
        let parsed = SweepFragment::from_json(&fragment.to_json()).expect("parse");
        assert_eq!(parsed.shard, fragment.shard);
        assert_eq!(parsed.instance, fragment.instance);
        assert_eq!(parsed.instance_fingerprint, fragment.instance_fingerprint);
        assert_eq!(parsed.seeds, fragment.seeds);
        assert_eq!(parsed.agents, fragment.agents);
        assert_eq!(parsed.deviations, fragment.deviations);
        assert_eq!(parsed.baselines, fragment.baselines);
        assert_eq!(parsed.cells, fragment.cells);
    }

    #[test]
    fn merge_detects_missing_duplicate_and_foreign_fragments() {
        let scenario = tiny_scenario();
        let catalog = small_catalog();
        let fragments: Vec<SweepFragment> = (0..2)
            .map(|index| scenario.sweep_shard(&[9], &catalog, ShardSpec::new(index, 2), "tiny"))
            .collect();
        // Missing shard.
        assert!(matches!(
            SweepFragment::merge(&fragments[..1]),
            Err(MergeError::ShardSetIncomplete { .. })
        ));
        // Duplicated shard.
        let doubled = vec![fragments[0].clone(), fragments[0].clone()];
        assert!(matches!(
            SweepFragment::merge(&doubled),
            Err(MergeError::ShardSetIncomplete { .. })
        ));
        // Empty input.
        assert_eq!(SweepFragment::merge(&[]), Err(MergeError::NoFragments));
        // Foreign fragment: different label.
        let mut foreign = fragments.clone();
        foreign[1].instance = "other".to_string();
        assert!(matches!(
            SweepFragment::merge(&foreign),
            Err(MergeError::ManifestMismatch { .. })
        ));
        // Baseline conflict.
        let mut conflicted = fragments.clone();
        conflicted[1].baselines[0].1[0] += Money::new(1);
        assert_eq!(
            SweepFragment::merge(&conflicted),
            Err(MergeError::BaselineConflict { seed: 9 })
        );
        // Duplicated cell inside an otherwise complete set.
        let mut duplicated = fragments.clone();
        let stolen = duplicated[1].cells[0].clone();
        duplicated[0].cells.push(stolen);
        assert!(matches!(
            SweepFragment::merge(&duplicated),
            Err(MergeError::DuplicateCell { .. })
        ));
        // Dropped cell.
        let mut dropped = fragments.clone();
        let removed = dropped[1].cells.pop().expect("non-empty");
        assert_eq!(
            SweepFragment::merge(&dropped),
            Err(MergeError::MissingCells {
                missing: 1,
                first: removed.index
            })
        );
        // Corrupted coordinates.
        let mut corrupt = fragments.clone();
        corrupt[0].cells[0].agent += 1;
        assert!(matches!(
            SweepFragment::merge(&corrupt),
            Err(MergeError::MalformedCell { .. })
        ));
    }

    #[test]
    fn json_parser_handles_escapes_and_rejects_garbage() {
        let value =
            Json::parse(r#"{"a": "q\"\\\nA", "b": [1, -2, 3.5], "c": null}"#).expect("parse");
        let obj = value.as_object("top").expect("object");
        assert_eq!(get(obj, "a").unwrap().as_str("a").unwrap(), "q\"\\\nA");
        let b = get(obj, "b").unwrap().as_array("b").unwrap();
        assert_eq!(b[0].as_i64("b0").unwrap(), 1);
        assert_eq!(b[1].as_i64("b1").unwrap(), -2);
        assert!((b[2].as_f64("b2").unwrap() - 3.5).abs() < 1e-12);
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        // u64 seeds beyond f64's integer range survive exactly.
        let big = Json::parse("18446744073709551615").expect("parse");
        assert_eq!(big.as_u64("big").unwrap(), u64::MAX);
    }

    #[test]
    fn skew_summary_names_every_shard() {
        let scenario = tiny_scenario();
        let catalog = small_catalog();
        let fragments: Vec<SweepFragment> = (0..2)
            .map(|index| scenario.sweep_shard(&[4], &catalog, ShardSpec::new(index, 2), "tiny"))
            .collect();
        let summary = SweepFragment::skew_summary(&fragments);
        assert!(summary.contains("shard 0/2"));
        assert!(summary.contains("shard 1/2"));
        assert!(summary.contains("skew"));
    }
}
