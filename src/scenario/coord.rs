//! Live work-stealing sweep coordination: a driver that leases small
//! cell ranges of the `(seed × agent × deviation)` grid to worker
//! processes over a newline-delimited JSON socket protocol, survives
//! worker loss, and merges results byte-identically to the monolithic
//! sweep.
//!
//! PR 7's static strides ([`ShardSpec`]) partition the grid up front, so
//! one slow or dead shard job stalls the whole sweep. The coordinator
//! replaces the *scheduling* — workers pull leases dynamically, lost
//! leases are re-issued — while keeping the *results* pinned by the same
//! byte-identity discipline: per-cell seeds ([`cell_seed`]) depend only
//! on `(seed, agent, deviation)`, so the merged [`SweepReport`]
//! fingerprint is identical to [`Scenario::sweep`] regardless of worker
//! count, scheduling order, or injected failures.
//!
//! # Protocol (`specfaith-coord-v1`)
//!
//! One JSON object per line ([`Frame`]), over a Unix or TCP socket
//! ([`CoordAddr`]). Worker → coordinator:
//!
//! - `hello` — the worker's name plus its full grid manifest
//!   ([`GridManifest`]: instance label, instance fingerprint, seeds,
//!   agents, deviations). A manifest that disagrees with the
//!   coordinator's is refused with `reject`, mirroring
//!   [`MergeError::ManifestMismatch`].
//! - `baselines` — every seed's honest-baseline utility vector, sent
//!   once after `welcome`. Workers must agree bit-identically or the
//!   run fails with [`MergeError::BaselineConflict`].
//! - `ready` — a pull request for work.
//! - `heartbeat` — extends a held lease's deadline.
//! - `result` — a completed lease's cells, [`FragmentCell`]-shaped.
//!
//! Coordinator → worker: `welcome`, `reject`, `lease` (lease id + cell
//! indices), `idle` (no eligible work right now — retry), `done`,
//! `abort`.
//!
//! # Leases, loss, and reissue
//!
//! The grid is cut into contiguous ranges of
//! [`CoordConfig::lease_cells`] cells. A lease is *outstanding* from
//! grant until its `result` arrives; it is re-queued (and the reissue
//! counter bumped) when its worker's connection drops, when a line
//! fails to parse, or when its deadline — [`CoordConfig::lease_timeout`]
//! past the grant or the last `heartbeat` — expires. Re-queued leases
//! back off exponentially from [`CoordConfig::retry_backoff`]; a lease
//! re-queued [`CoordConfig::max_attempts`] times fails the run
//! ([`CoordError::RetriesExhausted`]).
//!
//! Because results are content-addressed by grid index, a late result
//! from a worker whose lease was already reissued is harmless: a
//! bit-identical duplicate cell is tolerated (and counted in
//! [`CoordStats::duplicate_results`]); a *conflicting* duplicate fails
//! the run with [`MergeError::DuplicateCell`], exactly as the offline
//! merge would.
//!
//! # Fault injection
//!
//! [`FaultPlan`] makes the failure paths deterministic and testable:
//! kill or hang a worker after `k` evaluated cells, slow every cell,
//! and delay / duplicate / corrupt the `n`-th result line. The
//! integration battery (`tests/coordinator.rs`) pins each path to the
//! same merged fingerprint as the monolithic sweep.
//!
//! The filesystem spool flow (`sweep_bench --shard` fragments merged by
//! `--merge`) remains the fallback when no live socket between hosts is
//! available.
//!
//! [`cell_seed`]: super::sweep::cell_seed
//! [`Scenario::sweep`]: super::Scenario::sweep

use super::report::SweepReport;
use super::shard::{
    get, instance_fingerprint, json_string, spec_from_json, spec_to_json, FragmentCell, Json,
    MergeError, ShardSpec, ShardTiming, SweepFragment,
};
use super::sweep::{deviation_grid, evaluate, evaluate_baseline, Catalog};
use super::Scenario;
use specfaith_core::equilibrium::DeviationSpec;
use specfaith_core::money::Money;
use specfaith_graph::cache::CacheScope;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// The wire-format tag every `hello` frame carries.
pub const COORD_FORMAT: &str = "specfaith-coord-v1";

/// How often blocked reads wake up to reap expired leases and check for
/// completion or a fatal error.
const TICK: Duration = Duration::from_millis(50);

/// How long a worker waits for the coordinator to answer one of its own
/// frames before giving up.
const WORKER_FRAME_TIMEOUT: Duration = Duration::from_secs(300);

/// How long the coordinator waits for a worker's `hello` after accept.
const HELLO_TIMEOUT: Duration = Duration::from_secs(10);

/// Hard cap on one buffered protocol line — anything longer is a
/// protocol violation, not a legitimate frame.
const MAX_LINE_BYTES: usize = 64 * 1024 * 1024;

// ---------------------------------------------------------------------------
// Addresses and transport.

/// Where a coordinator listens / a worker connects: `unix:<path>` or
/// `tcp:<host>:<port>`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoordAddr {
    /// A Unix-domain socket path (same-host deployments; CI default).
    Unix(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7744`. Bind with port `0` to let
    /// the OS pick; [`CoordListener::local_addr`] reports the result.
    Tcp(String),
}

impl CoordAddr {
    /// Parses `unix:<path>` or `tcp:<host>:<port>`.
    pub fn parse(text: &str) -> Result<CoordAddr, String> {
        if let Some(path) = text.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix: address needs a socket path".to_string());
            }
            Ok(CoordAddr::Unix(PathBuf::from(path)))
        } else if let Some(addr) = text.strip_prefix("tcp:") {
            if addr.is_empty() {
                return Err("tcp: address needs host:port".to_string());
            }
            Ok(CoordAddr::Tcp(addr.to_string()))
        } else {
            Err(format!(
                "address {text:?} must start with \"unix:\" or \"tcp:\""
            ))
        }
    }
}

impl fmt::Display for CoordAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordAddr::Unix(path) => write!(f, "unix:{}", path.display()),
            CoordAddr::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// One accepted or dialed protocol connection.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn connect(addr: &CoordAddr) -> io::Result<Conn> {
        match addr {
            CoordAddr::Tcp(addr) => TcpStream::connect(addr.as_str()).map(Conn::Tcp),
            #[cfg(unix)]
            CoordAddr::Unix(path) => UnixStream::connect(path).map(Conn::Unix),
            #[cfg(not(unix))]
            CoordAddr::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are unavailable on this platform",
            )),
        }
    }

    fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(stream) => stream.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(stream) => stream.try_clone().map(Conn::Unix),
        }
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(stream) => stream.set_read_timeout(timeout),
            #[cfg(unix)]
            Conn::Unix(stream) => stream.set_read_timeout(timeout),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(stream) => stream.read(buf),
            #[cfg(unix)]
            Conn::Unix(stream) => stream.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(stream) => stream.write(buf),
            #[cfg(unix)]
            Conn::Unix(stream) => stream.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(stream) => stream.flush(),
            #[cfg(unix)]
            Conn::Unix(stream) => stream.flush(),
        }
    }
}

/// The coordinator's listening socket. Binding a [`CoordAddr::Unix`]
/// path removes any stale socket file first and unlinks it again on
/// drop.
pub struct CoordListener {
    inner: ListenerInner,
    addr: CoordAddr,
}

enum ListenerInner {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl CoordListener {
    /// Binds `addr`.
    pub fn bind(addr: &CoordAddr) -> io::Result<CoordListener> {
        match addr {
            CoordAddr::Tcp(text) => {
                let listener = TcpListener::bind(text.as_str())?;
                let addr = CoordAddr::Tcp(listener.local_addr()?.to_string());
                Ok(CoordListener {
                    inner: ListenerInner::Tcp(listener),
                    addr,
                })
            }
            #[cfg(unix)]
            CoordAddr::Unix(path) => {
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                Ok(CoordListener {
                    inner: ListenerInner::Unix(listener),
                    addr: addr.clone(),
                })
            }
            #[cfg(not(unix))]
            CoordAddr::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are unavailable on this platform",
            )),
        }
    }

    /// The bound address — with the OS-assigned port resolved when the
    /// bind address used port `0`.
    pub fn local_addr(&self) -> &CoordAddr {
        &self.addr
    }

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match &self.inner {
            ListenerInner::Tcp(listener) => listener.set_nonblocking(nonblocking),
            #[cfg(unix)]
            ListenerInner::Unix(listener) => listener.set_nonblocking(nonblocking),
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match &self.inner {
            ListenerInner::Tcp(listener) => listener.accept().map(|(stream, _)| Conn::Tcp(stream)),
            #[cfg(unix)]
            ListenerInner::Unix(listener) => {
                listener.accept().map(|(stream, _)| Conn::Unix(stream))
            }
        }
    }
}

impl Drop for CoordListener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let CoordAddr::Unix(path) = &self.addr {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Timeout-aware line reader: accumulates raw reads and hands back
/// complete `\n`-terminated lines, surviving reads that time out
/// mid-line (a plain `BufRead::read_line` would lose the partial line).
struct LineReader {
    conn: Conn,
    buf: Vec<u8>,
    queue: VecDeque<String>,
}

enum ReadEvent {
    /// One complete line, `\n` (and any trailing `\r`) stripped.
    Line(String),
    /// The read timed out with no complete line — a scheduling tick.
    Tick,
    /// The peer closed the connection.
    Eof,
}

impl LineReader {
    fn new(conn: Conn) -> LineReader {
        LineReader {
            conn,
            buf: Vec::new(),
            queue: VecDeque::new(),
        }
    }

    fn next(&mut self) -> io::Result<ReadEvent> {
        if let Some(line) = self.queue.pop_front() {
            return Ok(ReadEvent::Line(line));
        }
        let mut chunk = [0u8; 4096];
        match self.conn.read(&mut chunk) {
            Ok(0) => Ok(ReadEvent::Eof),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                if self.buf.len() > MAX_LINE_BYTES {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "protocol line exceeds the size cap",
                    ));
                }
                while let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                    let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                    line.pop(); // the \n
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    // Lossy: garbled bytes become a line Frame::parse
                    // rejects, rather than a reader error.
                    self.queue
                        .push_back(String::from_utf8_lossy(&line).into_owned());
                }
                match self.queue.pop_front() {
                    Some(line) => Ok(ReadEvent::Line(line)),
                    None => Ok(ReadEvent::Tick),
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                Ok(ReadEvent::Tick)
            }
            Err(e) => Err(e),
        }
    }
}

fn send_frame(conn: &mut Conn, frame: &Frame) -> io::Result<()> {
    send_line(conn, &frame.to_line())
}

fn send_line(conn: &mut Conn, line: &str) -> io::Result<()> {
    conn.write_all(line.as_bytes())?;
    conn.write_all(b"\n")?;
    conn.flush()
}

// ---------------------------------------------------------------------------
// Manifest.

/// The identity of one sweep grid: everything a fragment manifest
/// carries short of shard geometry. The coordinator refuses workers
/// whose manifest disagrees (`reject`), the live equivalent of
/// [`MergeError::ManifestMismatch`].
#[derive(Clone, Debug, PartialEq)]
pub struct GridManifest {
    /// Caller-chosen grid label (e.g. `"sweep-n64-i2004-s7-quick-ideal"`).
    pub instance: String,
    /// Opaque hash of the scenario's topology, costs, traffic, and
    /// mechanism — see [`SweepFragment::instance_fingerprint`].
    pub instance_fingerprint: String,
    /// The swept seeds, in sweep order.
    pub seeds: Vec<u64>,
    /// The swept agents (topology indices), in sweep order.
    pub agents: Vec<usize>,
    /// The catalog's deviation specs, in catalog order.
    pub deviations: Vec<DeviationSpec>,
}

impl GridManifest {
    /// The manifest of the full-agent grid of `scenario × seeds ×
    /// catalog`.
    pub fn new(scenario: &Scenario, seeds: &[u64], catalog: &Catalog, instance: &str) -> Self {
        let agents: Vec<usize> = (0..scenario.num_nodes()).collect();
        GridManifest::sampled(scenario, seeds, catalog, &agents, instance)
    }

    /// The manifest of the grid restricted to deviations by `agents` —
    /// the coordinated counterpart of [`Scenario::sweep_sampled`].
    ///
    /// # Panics
    ///
    /// Panics if an agent index is out of range or listed twice.
    ///
    /// [`Scenario::sweep_sampled`]: super::Scenario::sweep_sampled
    pub fn sampled(
        scenario: &Scenario,
        seeds: &[u64],
        catalog: &Catalog,
        agents: &[usize],
        instance: &str,
    ) -> Self {
        let n = scenario.num_nodes();
        assert!(
            agents.iter().all(|&agent| agent < n),
            "sampled agents must be topology indices"
        );
        assert!(
            (1..agents.len()).all(|i| !agents[..i].contains(&agents[i])),
            "sampled agents must be distinct"
        );
        GridManifest {
            instance: instance.to_string(),
            instance_fingerprint: instance_fingerprint(scenario),
            seeds: seeds.to_vec(),
            agents: agents.to_vec(),
            deviations: catalog.specs(),
        }
    }

    /// Total cells of this grid.
    pub fn grid_cells(&self) -> usize {
        self.seeds.len() * self.agents.len() * self.deviations.len()
    }

    /// First field on which `other` disagrees with `self`, if any.
    fn mismatch(&self, other: &GridManifest) -> Option<String> {
        if self.instance != other.instance {
            return Some(format!(
                "instance {:?} vs coordinator's {:?}",
                other.instance, self.instance
            ));
        }
        if self.instance_fingerprint != other.instance_fingerprint {
            return Some(format!(
                "instance_fingerprint {} vs coordinator's {}",
                other.instance_fingerprint, self.instance_fingerprint
            ));
        }
        if self.seeds != other.seeds {
            return Some(format!(
                "seeds {:?} vs coordinator's {:?}",
                other.seeds, self.seeds
            ));
        }
        if self.agents != other.agents {
            return Some(format!(
                "agents {:?} vs coordinator's {:?}",
                other.agents, self.agents
            ));
        }
        if self.deviations != other.deviations {
            return Some("deviation catalogs disagree".to_string());
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Frames.

/// One line of the `specfaith-coord-v1` protocol. See the module docs
/// for the frame flow.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Worker → coordinator: identification plus the worker's grid
    /// manifest, validated against the coordinator's.
    Hello {
        /// The worker's self-chosen display name.
        worker: String,
        /// The grid the worker believes it is sweeping.
        manifest: GridManifest,
    },
    /// Coordinator → worker: the manifest matched; work may begin.
    Welcome {
        /// Total cells of the grid, informational.
        grid_cells: usize,
    },
    /// Coordinator → worker: the `hello` was refused; the connection
    /// closes after this frame.
    Reject {
        /// Why — e.g. a manifest mismatch.
        reason: String,
    },
    /// Worker → coordinator: every seed's honest-baseline utilities.
    Baselines {
        /// Seconds the worker spent on the baselines.
        secs: f64,
        /// Per swept seed, the honest utility vector.
        baselines: Vec<(u64, Vec<Money>)>,
    },
    /// Worker → coordinator: give me work.
    Ready,
    /// Coordinator → worker: a granted lease.
    Lease {
        /// Lease id, echoed in `heartbeat` and `result`.
        lease: u64,
        /// The global grid indices to evaluate.
        cells: Vec<usize>,
    },
    /// Coordinator → worker: no eligible work right now (outstanding
    /// leases elsewhere, or back-off pending) — ask again.
    Idle {
        /// Suggested retry delay in milliseconds.
        retry_ms: u64,
    },
    /// Worker → coordinator: still computing the named lease.
    Heartbeat {
        /// The held lease id.
        lease: u64,
    },
    /// Worker → coordinator: a completed lease's cells.
    Result {
        /// The completed lease id.
        lease: u64,
        /// Seconds spent evaluating this lease.
        secs: f64,
        /// The evaluated cells, with global grid indices.
        cells: Vec<FragmentCell>,
    },
    /// Coordinator → worker: the grid is complete; disconnect.
    Done,
    /// Coordinator → worker: the run failed; disconnect.
    Abort {
        /// The fatal error, rendered.
        reason: String,
    },
}

impl Frame {
    /// Serializes the frame as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Frame::Hello { worker, manifest } => format!(
                "{{\"frame\": \"hello\", \"format\": {}, \"worker\": {}, \"instance\": {}, \
                 \"instance_fingerprint\": {}, \"seeds\": [{}], \"agents\": [{}], \
                 \"deviations\": [{}]}}",
                json_string(COORD_FORMAT),
                json_string(worker),
                json_string(&manifest.instance),
                json_string(&manifest.instance_fingerprint),
                join(manifest.seeds.iter().map(u64::to_string)),
                join(manifest.agents.iter().map(usize::to_string)),
                join(manifest.deviations.iter().map(spec_to_json)),
            ),
            Frame::Welcome { grid_cells } => {
                format!("{{\"frame\": \"welcome\", \"grid_cells\": {grid_cells}}}")
            }
            Frame::Reject { reason } => {
                format!(
                    "{{\"frame\": \"reject\", \"reason\": {}}}",
                    json_string(reason)
                )
            }
            Frame::Baselines { secs, baselines } => format!(
                "{{\"frame\": \"baselines\", \"secs\": {secs:.3}, \"baselines\": [{}]}}",
                join(baselines.iter().map(|(seed, utilities)| format!(
                    "{{\"seed\": {seed}, \"utilities\": [{}]}}",
                    join(utilities.iter().map(|m| m.value().to_string()))
                ))),
            ),
            Frame::Ready => "{\"frame\": \"ready\"}".to_string(),
            Frame::Lease { lease, cells } => format!(
                "{{\"frame\": \"lease\", \"lease\": {lease}, \"cells\": [{}]}}",
                join(cells.iter().map(usize::to_string)),
            ),
            Frame::Idle { retry_ms } => {
                format!("{{\"frame\": \"idle\", \"retry_ms\": {retry_ms}}}")
            }
            Frame::Heartbeat { lease } => {
                format!("{{\"frame\": \"heartbeat\", \"lease\": {lease}}}")
            }
            Frame::Result { lease, secs, cells } => format!(
                "{{\"frame\": \"result\", \"lease\": {lease}, \"secs\": {secs:.3}, \
                 \"cells\": [{}]}}",
                join(cells.iter().map(cell_to_json)),
            ),
            Frame::Done => "{\"frame\": \"done\"}".to_string(),
            Frame::Abort { reason } => {
                format!(
                    "{{\"frame\": \"abort\", \"reason\": {}}}",
                    json_string(reason)
                )
            }
        }
    }

    /// Parses one protocol line. Tolerates unknown keys; any structural
    /// defect is an error, never a panic.
    pub fn parse(line: &str) -> Result<Frame, String> {
        let value = Json::parse(line)?;
        let top = value.as_object("frame")?;
        let kind = get(top, "frame")?.as_str("frame")?;
        match kind {
            "hello" => {
                let format = get(top, "format")?.as_str("format")?;
                if format != COORD_FORMAT {
                    return Err(format!(
                        "protocol format {format:?} is not {COORD_FORMAT:?}"
                    ));
                }
                Ok(Frame::Hello {
                    worker: get(top, "worker")?.as_str("worker")?.to_string(),
                    manifest: GridManifest {
                        instance: get(top, "instance")?.as_str("instance")?.to_string(),
                        instance_fingerprint: get(top, "instance_fingerprint")?
                            .as_str("instance_fingerprint")?
                            .to_string(),
                        seeds: get(top, "seeds")?
                            .as_array("seeds")?
                            .iter()
                            .map(|v| v.as_u64("seed"))
                            .collect::<Result<Vec<_>, _>>()?,
                        agents: get(top, "agents")?
                            .as_array("agents")?
                            .iter()
                            .map(|v| v.as_usize("agent"))
                            .collect::<Result<Vec<_>, _>>()?,
                        deviations: get(top, "deviations")?
                            .as_array("deviations")?
                            .iter()
                            .map(spec_from_json)
                            .collect::<Result<Vec<_>, _>>()?,
                    },
                })
            }
            "welcome" => Ok(Frame::Welcome {
                grid_cells: get(top, "grid_cells")?.as_usize("grid_cells")?,
            }),
            "reject" => Ok(Frame::Reject {
                reason: get(top, "reason")?.as_str("reason")?.to_string(),
            }),
            "baselines" => Ok(Frame::Baselines {
                secs: get(top, "secs")?.as_f64("secs")?,
                baselines: get(top, "baselines")?
                    .as_array("baselines")?
                    .iter()
                    .map(|v| {
                        let obj = v.as_object("baseline")?;
                        let seed = get(obj, "seed")?.as_u64("baseline.seed")?;
                        let utilities = get(obj, "utilities")?
                            .as_array("baseline.utilities")?
                            .iter()
                            .map(|v| Ok(Money::new(v.as_i64("utility")?)))
                            .collect::<Result<Vec<_>, String>>()?;
                        Ok((seed, utilities))
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            }),
            "ready" => Ok(Frame::Ready),
            "lease" => Ok(Frame::Lease {
                lease: get(top, "lease")?.as_u64("lease")?,
                cells: get(top, "cells")?
                    .as_array("cells")?
                    .iter()
                    .map(|v| v.as_usize("lease cell"))
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            "idle" => Ok(Frame::Idle {
                retry_ms: get(top, "retry_ms")?.as_u64("retry_ms")?,
            }),
            "heartbeat" => Ok(Frame::Heartbeat {
                lease: get(top, "lease")?.as_u64("lease")?,
            }),
            "result" => Ok(Frame::Result {
                lease: get(top, "lease")?.as_u64("lease")?,
                secs: get(top, "secs")?.as_f64("secs")?,
                cells: get(top, "cells")?
                    .as_array("cells")?
                    .iter()
                    .map(cell_from_json)
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            "done" => Ok(Frame::Done),
            "abort" => Ok(Frame::Abort {
                reason: get(top, "reason")?.as_str("reason")?.to_string(),
            }),
            other => Err(format!("unknown frame kind {other:?}")),
        }
    }
}

fn cell_to_json(cell: &FragmentCell) -> String {
    format!(
        "{{\"index\": {}, \"seed\": {}, \"agent\": {}, \"deviation\": {}, \
         \"deviant_utility\": {}, \"detected\": {}}}",
        cell.index,
        cell.seed,
        cell.agent,
        cell.deviation,
        cell.deviant_utility.value(),
        cell.detected
    )
}

fn cell_from_json(value: &Json) -> Result<FragmentCell, String> {
    let obj = value.as_object("cell")?;
    Ok(FragmentCell {
        index: get(obj, "index")?.as_usize("cell.index")?,
        seed: get(obj, "seed")?.as_u64("cell.seed")?,
        agent: get(obj, "agent")?.as_usize("cell.agent")?,
        deviation: get(obj, "deviation")?.as_usize("cell.deviation")?,
        deviant_utility: Money::new(get(obj, "deviant_utility")?.as_i64("cell.deviant_utility")?),
        detected: get(obj, "detected")?.as_bool("cell.detected")?,
    })
}

fn join(items: impl Iterator<Item = String>) -> String {
    items.collect::<Vec<_>>().join(", ")
}

// ---------------------------------------------------------------------------
// Configuration, errors, stats.

/// Tuning knobs of one coordinated run. [`CoordConfig::default`] suits
/// the quick CI grid; tests shrink the timeouts.
#[derive(Clone, Debug)]
pub struct CoordConfig {
    /// Cells per lease (contiguous grid ranges). Smaller leases steal
    /// better; larger leases amortize protocol overhead.
    pub lease_cells: usize,
    /// How long a lease may go without a `result` or `heartbeat` before
    /// it is presumed lost and re-queued.
    pub lease_timeout: Duration,
    /// How many times one lease may be granted before the run fails
    /// with [`CoordError::RetriesExhausted`].
    pub max_attempts: u32,
    /// Base back-off before a re-queued lease is eligible again;
    /// doubles per attempt (capped at 32×).
    pub retry_backoff: Duration,
    /// How long the coordinator tolerates having no connected workers
    /// (including before the first connects) before failing with
    /// [`CoordError::NoWorkers`].
    pub idle_timeout: Duration,
    /// After completion, how long to wait for a silent worker's next
    /// frame before closing its connection.
    pub linger: Duration,
}

impl Default for CoordConfig {
    fn default() -> Self {
        CoordConfig {
            lease_cells: 8,
            lease_timeout: Duration::from_secs(30),
            max_attempts: 5,
            retry_backoff: Duration::from_millis(100),
            idle_timeout: Duration::from_secs(120),
            linger: Duration::from_secs(10),
        }
    }
}

/// Why a coordinated run failed.
#[derive(Debug)]
pub enum CoordError {
    /// Socket setup or transport failure.
    Io(String),
    /// A merge-semantics violation — the same typed errors the offline
    /// [`SweepFragment::merge`] raises (baseline conflicts, conflicting
    /// duplicate cells, malformed coordinates, …).
    Merge(MergeError),
    /// One lease was granted [`CoordConfig::max_attempts`] times
    /// without a surviving result.
    RetriesExhausted {
        /// Grant count at failure.
        attempts: u32,
        /// The poisoned lease's cell indices.
        cells: Vec<usize>,
    },
    /// No worker stayed connected for [`CoordConfig::idle_timeout`].
    NoWorkers {
        /// How long the coordinator waited.
        waited: Duration,
    },
}

impl fmt::Display for CoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordError::Io(detail) => write!(f, "coordination I/O error: {detail}"),
            CoordError::Merge(e) => write!(f, "{e}"),
            CoordError::RetriesExhausted { attempts, cells } => write!(
                f,
                "lease over cells {cells:?} failed {attempts} grants — retries exhausted"
            ),
            CoordError::NoWorkers { waited } => {
                write!(f, "no workers connected for {:.1}s", waited.as_secs_f64())
            }
        }
    }
}

impl std::error::Error for CoordError {}

/// Per-worker execution summary, the live counterpart of
/// [`ShardTiming`]-based shard skew rows.
#[derive(Clone, Debug, Default)]
pub struct WorkerStats {
    /// The worker's self-chosen name (from `hello`).
    pub name: String,
    /// Leases this worker completed.
    pub leases: u64,
    /// Cells this worker evaluated (including any whose lease had
    /// already been reissued — work done, not cells credited).
    pub cells: usize,
    /// Seconds the worker reported across its `result` frames.
    pub secs: f64,
    /// Seconds the worker reported for its baseline phase.
    pub baseline_secs: f64,
}

/// Counters and per-worker rows of one coordinated run.
#[derive(Clone, Debug, Default)]
pub struct CoordStats {
    /// Total cells of the grid.
    pub grid_cells: usize,
    /// Lease grants, including re-grants.
    pub leases_issued: u64,
    /// Leases re-queued after a death, timeout, or protocol violation.
    pub leases_reissued: u64,
    /// Bit-identical duplicate cells tolerated (late results of
    /// reissued leases, or an injected duplicate frame).
    pub duplicate_results: u64,
    /// Lines that failed to parse; each costs its sender the
    /// connection.
    pub corrupt_lines: u64,
    /// Per-worker rows, sorted by name.
    pub workers: Vec<WorkerStats>,
}

impl CoordStats {
    /// A one-line-per-worker skew table, shaped like
    /// [`SweepFragment::skew_summary`].
    pub fn skew_summary(&self) -> String {
        let mut lines = String::new();
        let mut rates: Vec<f64> = Vec::new();
        for worker in &self.workers {
            let rate = if worker.cells > 0 && worker.secs > 0.0 {
                Some(worker.cells as f64 / worker.secs)
            } else {
                None
            };
            if let Some(rate) = rate {
                rates.push(rate);
            }
            lines.push_str(&format!(
                "  worker {}: {} cells over {} leases in {:.3}s ({}; baseline {:.3}s)\n",
                worker.name,
                worker.cells,
                worker.leases,
                worker.secs,
                match rate {
                    Some(rate) => format!("{rate:.2} cells/s"),
                    None => "idle".to_string(),
                },
                worker.baseline_secs,
            ));
        }
        let skew = match (
            rates.iter().cloned().reduce(f64::max),
            rates.iter().cloned().reduce(f64::min),
        ) {
            (Some(max), Some(min)) if min > 0.0 => format!("{:.2}", max / min),
            _ => "n/a".to_string(),
        };
        lines.push_str(&format!("  throughput skew (max/min): {skew}\n"));
        lines
    }
}

/// A successful coordinated run: the merged report (byte-identical to
/// the monolithic sweep), its fingerprint, and the run's stats.
#[derive(Clone, Debug)]
pub struct CoordOutcome {
    /// The merged sweep report.
    pub report: SweepReport,
    /// `report.fingerprint()`, precomputed.
    pub fingerprint: String,
    /// Scheduling and fault counters.
    pub stats: CoordStats,
}

// ---------------------------------------------------------------------------
// Coordinator state machine.

/// A lease waiting in the queue.
struct QueuedLease {
    cells: Vec<usize>,
    attempts: u32,
    not_before: Instant,
}

/// A granted lease awaiting its result.
struct Outstanding {
    cells: Vec<usize>,
    attempts: u32,
    conn_id: u64,
    deadline: Instant,
}

struct CoordState {
    queue: VecDeque<QueuedLease>,
    outstanding: HashMap<u64, Outstanding>,
    next_lease: u64,
    slots: Vec<Option<FragmentCell>>,
    remaining: usize,
    baselines: Option<Vec<(u64, Vec<Money>)>>,
    connected: usize,
    idle_since: Option<Instant>,
    stats: CoordStats,
    fatal: Option<CoordError>,
}

impl CoordState {
    fn complete(&self) -> bool {
        self.remaining == 0 && self.baselines.is_some()
    }

    fn finished(&self) -> bool {
        self.complete() || self.fatal.is_some()
    }

    fn set_fatal(&mut self, error: CoordError) {
        if self.fatal.is_none() {
            self.fatal = Some(error);
        }
    }

    fn fatal_reason(&self) -> Option<String> {
        self.fatal.as_ref().map(|e| e.to_string())
    }

    fn worker_mut(&mut self, name: &str) -> &mut WorkerStats {
        if let Some(pos) = self.stats.workers.iter().position(|w| w.name == name) {
            return &mut self.stats.workers[pos];
        }
        self.stats.workers.push(WorkerStats {
            name: name.to_string(),
            ..WorkerStats::default()
        });
        self.stats.workers.last_mut().expect("just pushed")
    }
}

struct Shared {
    manifest: GridManifest,
    config: CoordConfig,
    state: Mutex<CoordState>,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, CoordState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Re-queues one reclaimed lease with back-off, or fails the run
    /// when its attempts are exhausted.
    fn requeue(&self, st: &mut CoordState, lease: Outstanding) {
        let attempts = lease.attempts + 1;
        st.stats.leases_reissued += 1;
        if attempts >= self.config.max_attempts {
            st.set_fatal(CoordError::RetriesExhausted {
                attempts,
                cells: lease.cells.clone(),
            });
            return;
        }
        let backoff = self
            .config
            .retry_backoff
            .saturating_mul(1u32 << attempts.saturating_sub(1).min(5));
        st.queue.push_back(QueuedLease {
            cells: lease.cells,
            attempts,
            not_before: Instant::now() + backoff,
        });
    }

    /// Reclaims every outstanding lease whose deadline has passed.
    fn reap(&self, st: &mut CoordState) {
        let now = Instant::now();
        let expired: Vec<u64> = st
            .outstanding
            .iter()
            .filter(|(_, lease)| lease.deadline <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            if let Some(lease) = st.outstanding.remove(&id) {
                self.requeue(st, lease);
            }
        }
    }

    /// A connection ended (EOF, error, or protocol violation): reclaim
    /// its outstanding leases and update the idle clock.
    fn drop_conn(&self, conn_id: u64) {
        let mut st = self.lock();
        let lost: Vec<u64> = st
            .outstanding
            .iter()
            .filter(|(_, lease)| lease.conn_id == conn_id)
            .map(|(&id, _)| id)
            .collect();
        for id in lost {
            if let Some(lease) = st.outstanding.remove(&id) {
                self.requeue(&mut st, lease);
            }
        }
        st.connected = st.connected.saturating_sub(1);
        if st.connected == 0 {
            st.idle_since = Some(Instant::now());
        }
    }

    /// Grants the first eligible queued lease to `conn_id`, if any.
    fn take_lease(&self, st: &mut CoordState, conn_id: u64) -> Option<(u64, Vec<usize>)> {
        let now = Instant::now();
        let pos = st.queue.iter().position(|lease| lease.not_before <= now)?;
        let lease = st.queue.remove(pos).expect("position just found");
        let id = st.next_lease;
        st.next_lease += 1;
        st.stats.leases_issued += 1;
        st.outstanding.insert(
            id,
            Outstanding {
                cells: lease.cells.clone(),
                attempts: lease.attempts,
                conn_id,
                deadline: now + self.config.lease_timeout,
            },
        );
        Some((id, lease.cells))
    }

    /// Validates and places one result frame's cells. Any violation
    /// sets the fatal error and reports it back as `Err`.
    fn accept_result(
        &self,
        st: &mut CoordState,
        worker: &str,
        lease: u64,
        secs: f64,
        cells: Vec<FragmentCell>,
    ) -> Result<(), ()> {
        let agents = self.manifest.agents.len();
        let deviations = self.manifest.deviations.len();
        let total = st.slots.len();
        for cell in &cells {
            if cell.index >= total {
                st.set_fatal(CoordError::Merge(MergeError::MalformedCell {
                    detail: format!("cell index {} outside the {total}-cell grid", cell.index),
                }));
                return Err(());
            }
            let seed_index = cell.index / (agents * deviations);
            let agent_pos = (cell.index / deviations) % agents;
            let deviation = cell.index % deviations;
            let expected = (
                self.manifest.seeds[seed_index],
                self.manifest.agents[agent_pos],
                deviation,
            );
            if (cell.seed, cell.agent, cell.deviation) != expected {
                st.set_fatal(CoordError::Merge(MergeError::MalformedCell {
                    detail: format!(
                        "cell {} claims (seed {}, agent {}, deviation {}), \
                         grid index implies (seed {}, agent {}, deviation {})",
                        cell.index,
                        cell.seed,
                        cell.agent,
                        cell.deviation,
                        expected.0,
                        expected.1,
                        expected.2
                    ),
                }));
                return Err(());
            }
        }
        let evaluated = cells.len();
        for cell in cells {
            match &st.slots[cell.index] {
                Some(existing) if *existing == cell => st.stats.duplicate_results += 1,
                Some(_) => {
                    st.set_fatal(CoordError::Merge(MergeError::DuplicateCell {
                        index: cell.index,
                    }));
                    return Err(());
                }
                None => {
                    let index = cell.index;
                    st.slots[index] = Some(cell);
                    st.remaining -= 1;
                }
            }
        }
        if st.outstanding.remove(&lease).is_some() {
            st.worker_mut(worker).leases += 1;
        }
        let row = st.worker_mut(worker);
        row.cells += evaluated;
        row.secs += secs;
        if st.remaining == 0 && st.baselines.is_none() {
            st.set_fatal(CoordError::Io(
                "grid complete but no worker supplied baselines".to_string(),
            ));
            return Err(());
        }
        Ok(())
    }

    /// Validates one baselines frame against the manifest and any
    /// previously accepted set.
    fn accept_baselines(
        &self,
        st: &mut CoordState,
        worker: &str,
        secs: f64,
        baselines: Vec<(u64, Vec<Money>)>,
    ) -> Result<(), ()> {
        if baselines.len() != self.manifest.seeds.len()
            || baselines
                .iter()
                .map(|(seed, _)| *seed)
                .ne(self.manifest.seeds.iter().copied())
        {
            st.set_fatal(CoordError::Merge(MergeError::ManifestMismatch {
                detail: format!(
                    "worker {worker} baselines cover seeds {:?}, expected {:?}",
                    baselines.iter().map(|(seed, _)| *seed).collect::<Vec<_>>(),
                    self.manifest.seeds
                ),
            }));
            return Err(());
        }
        match &st.baselines {
            None => st.baselines = Some(baselines),
            Some(existing) => {
                for ((seed, utilities), (_, reference)) in baselines.iter().zip(existing) {
                    if utilities != reference {
                        st.set_fatal(CoordError::Merge(MergeError::BaselineConflict {
                            seed: *seed,
                        }));
                        return Err(());
                    }
                }
            }
        }
        st.worker_mut(worker).baseline_secs += secs;
        Ok(())
    }
}

/// The lease-issuing driver of one coordinated sweep. Construct with
/// [`Coordinator::new`] (full-agent grid) or [`Coordinator::sampled`],
/// bind a [`CoordListener`], and call [`Coordinator::serve`]; point any
/// number of [`run_worker`] processes (or threads) at the listener's
/// address.
pub struct Coordinator {
    manifest: GridManifest,
    config: CoordConfig,
}

impl Coordinator {
    /// A coordinator for the full-agent grid of
    /// `scenario × seeds × catalog`, labelled `instance`.
    pub fn new(
        scenario: &Scenario,
        seeds: &[u64],
        catalog: &Catalog,
        instance: &str,
        config: CoordConfig,
    ) -> Self {
        Coordinator {
            manifest: GridManifest::new(scenario, seeds, catalog, instance),
            config,
        }
    }

    /// A coordinator for the grid restricted to deviations by `agents`.
    ///
    /// # Panics
    ///
    /// Panics if an agent index is out of range or listed twice.
    pub fn sampled(
        scenario: &Scenario,
        seeds: &[u64],
        catalog: &Catalog,
        agents: &[usize],
        instance: &str,
        config: CoordConfig,
    ) -> Self {
        Coordinator {
            manifest: GridManifest::sampled(scenario, seeds, catalog, agents, instance),
            config,
        }
    }

    /// The grid manifest workers must match.
    pub fn manifest(&self) -> &GridManifest {
        &self.manifest
    }

    /// Runs the coordination loop on `listener` until the grid is
    /// complete or the run fails, then merges through
    /// [`SweepFragment::merge`] and fingerprints the report.
    pub fn serve(&self, listener: CoordListener) -> Result<CoordOutcome, CoordError> {
        listener
            .set_nonblocking(true)
            .map_err(|e| CoordError::Io(e.to_string()))?;
        let total = self.manifest.grid_cells();
        let lease_cells = self.config.lease_cells.max(1);
        let queue: VecDeque<QueuedLease> = (0..total)
            .step_by(lease_cells)
            .map(|start| QueuedLease {
                cells: (start..(start + lease_cells).min(total)).collect(),
                attempts: 0,
                not_before: Instant::now(),
            })
            .collect();
        let shared = Arc::new(Shared {
            manifest: self.manifest.clone(),
            config: self.config.clone(),
            state: Mutex::new(CoordState {
                queue,
                outstanding: HashMap::new(),
                next_lease: 0,
                slots: vec![None; total],
                remaining: total,
                baselines: None,
                connected: 0,
                idle_since: Some(Instant::now()),
                stats: CoordStats {
                    grid_cells: total,
                    ..CoordStats::default()
                },
                fatal: None,
            }),
        });

        let mut handles = Vec::new();
        let mut next_conn_id: u64 = 0;
        loop {
            {
                let mut st = shared.lock();
                shared.reap(&mut st);
                if st.finished() {
                    break;
                }
                if let Some(idle_since) = st.idle_since {
                    if idle_since.elapsed() >= self.config.idle_timeout {
                        st.set_fatal(CoordError::NoWorkers {
                            waited: idle_since.elapsed(),
                        });
                        break;
                    }
                }
            }
            match listener.accept() {
                Ok(conn) => {
                    let conn_id = next_conn_id;
                    next_conn_id += 1;
                    let shared = Arc::clone(&shared);
                    handles.push(thread::spawn(move || handle_conn(conn, conn_id, shared)));
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted
                    ) =>
                {
                    thread::sleep(Duration::from_millis(15));
                }
                Err(e) => {
                    shared.lock().set_fatal(CoordError::Io(e.to_string()));
                    break;
                }
            }
        }
        drop(listener);
        for handle in handles {
            let _ = handle.join();
        }

        let mut st = shared.lock();
        if let Some(fatal) = st.fatal.take() {
            return Err(fatal);
        }
        let cells: Vec<FragmentCell> = std::mem::take(&mut st.slots)
            .into_iter()
            .flatten()
            .collect();
        let baselines = st.baselines.take().expect("complete() implies baselines");
        let mut stats = std::mem::take(&mut st.stats);
        drop(st);
        stats.workers.sort_by(|a, b| a.name.cmp(&b.name));
        let fragment = SweepFragment {
            shard: ShardSpec::new(0, 1),
            instance: self.manifest.instance.clone(),
            instance_fingerprint: self.manifest.instance_fingerprint.clone(),
            seeds: self.manifest.seeds.clone(),
            agents: self.manifest.agents.clone(),
            deviations: self.manifest.deviations.clone(),
            baselines,
            cells,
            timing: ShardTiming {
                baseline_secs: stats.workers.iter().map(|w| w.baseline_secs).sum(),
                cells_secs: stats.workers.iter().map(|w| w.secs).sum(),
            },
        };
        let report = SweepFragment::merge(&[fragment]).map_err(CoordError::Merge)?;
        let fingerprint = report.fingerprint();
        Ok(CoordOutcome {
            report,
            fingerprint,
            stats,
        })
    }
}

/// One worker connection's server-side loop.
fn handle_conn(conn: Conn, conn_id: u64, shared: Arc<Shared>) {
    if conn.set_read_timeout(Some(TICK)).is_err() {
        return;
    }
    let mut writer = match conn.try_clone() {
        Ok(writer) => writer,
        Err(_) => return,
    };
    let mut reader = LineReader::new(conn);

    // Phase 1: hello, validated against the coordinator's manifest.
    let hello_deadline = Instant::now() + HELLO_TIMEOUT;
    let line = loop {
        match reader.next() {
            Ok(ReadEvent::Line(line)) => break line,
            Ok(ReadEvent::Tick) => {
                if Instant::now() >= hello_deadline || shared.lock().fatal.is_some() {
                    return;
                }
            }
            Ok(ReadEvent::Eof) | Err(_) => return,
        }
    };
    let (worker, manifest) = match Frame::parse(&line) {
        Ok(Frame::Hello { worker, manifest }) => (worker, manifest),
        _ => {
            let _ = send_frame(
                &mut writer,
                &Frame::Reject {
                    reason: "expected a hello frame".to_string(),
                },
            );
            return;
        }
    };
    if let Some(detail) = shared.manifest.mismatch(&manifest) {
        let _ = send_frame(&mut writer, &Frame::Reject { reason: detail });
        return;
    }
    {
        let mut st = shared.lock();
        st.connected += 1;
        st.idle_since = None;
        st.worker_mut(&worker);
    }
    let grid_cells = shared.manifest.grid_cells();
    if send_frame(&mut writer, &Frame::Welcome { grid_cells }).is_err() {
        shared.drop_conn(conn_id);
        return;
    }

    // Phase 2: the pull loop.
    let mut linger_since: Option<Instant> = None;
    loop {
        let event = match reader.next() {
            Ok(event) => event,
            Err(_) => {
                shared.drop_conn(conn_id);
                return;
            }
        };
        match event {
            ReadEvent::Eof => {
                shared.drop_conn(conn_id);
                return;
            }
            ReadEvent::Tick => {
                let mut st = shared.lock();
                shared.reap(&mut st);
                if let Some(reason) = st.fatal_reason() {
                    drop(st);
                    let _ = send_frame(&mut writer, &Frame::Abort { reason });
                    shared.drop_conn(conn_id);
                    return;
                }
                if st.complete() {
                    match linger_since {
                        None => linger_since = Some(Instant::now()),
                        Some(since) if since.elapsed() >= shared.config.linger => {
                            drop(st);
                            let _ = send_frame(&mut writer, &Frame::Done);
                            shared.drop_conn(conn_id);
                            return;
                        }
                        Some(_) => {}
                    }
                }
            }
            ReadEvent::Line(line) => {
                linger_since = None;
                let frame = match Frame::parse(&line) {
                    Ok(frame) => frame,
                    Err(_) => {
                        // A garbled line costs the sender its
                        // connection; its leases are re-queued.
                        shared.lock().stats.corrupt_lines += 1;
                        shared.drop_conn(conn_id);
                        return;
                    }
                };
                let mut st = shared.lock();
                if let Some(reason) = st.fatal_reason() {
                    drop(st);
                    let _ = send_frame(&mut writer, &Frame::Abort { reason });
                    shared.drop_conn(conn_id);
                    return;
                }
                match frame {
                    Frame::Ready => {
                        if st.complete() {
                            drop(st);
                            let _ = send_frame(&mut writer, &Frame::Done);
                            shared.drop_conn(conn_id);
                            return;
                        }
                        let granted = shared.take_lease(&mut st, conn_id);
                        drop(st);
                        let reply = match granted {
                            Some((lease, cells)) => Frame::Lease { lease, cells },
                            None => Frame::Idle { retry_ms: 50 },
                        };
                        if send_frame(&mut writer, &reply).is_err() {
                            shared.drop_conn(conn_id);
                            return;
                        }
                    }
                    Frame::Result { lease, secs, cells } => {
                        if shared
                            .accept_result(&mut st, &worker, lease, secs, cells)
                            .is_err()
                        {
                            let reason = st.fatal_reason().unwrap_or_default();
                            drop(st);
                            let _ = send_frame(&mut writer, &Frame::Abort { reason });
                            shared.drop_conn(conn_id);
                            return;
                        }
                    }
                    Frame::Baselines { secs, baselines } => {
                        if shared
                            .accept_baselines(&mut st, &worker, secs, baselines)
                            .is_err()
                        {
                            let reason = st.fatal_reason().unwrap_or_default();
                            drop(st);
                            let _ = send_frame(&mut writer, &Frame::Abort { reason });
                            shared.drop_conn(conn_id);
                            return;
                        }
                    }
                    Frame::Heartbeat { lease } => {
                        let deadline = Instant::now() + shared.config.lease_timeout;
                        if let Some(outstanding) = st.outstanding.get_mut(&lease) {
                            outstanding.deadline = deadline;
                        }
                    }
                    _ => {
                        // A coordinator-bound connection sending
                        // coordinator frames is a protocol violation.
                        st.stats.corrupt_lines += 1;
                        drop(st);
                        shared.drop_conn(conn_id);
                        return;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Worker.

/// Deterministic worker-side fault injection, so the coordinator's
/// failure paths are testable in-process. All fields compose; the
/// default injects nothing.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Drop the connection (simulated crash) before evaluating cell
    /// `k + 1`, counting evaluated cells across leases.
    pub kill_after_cells: Option<usize>,
    /// Stop responding — hold the current lease, send nothing, keep the
    /// connection open — before evaluating cell `k + 1`. Exercises the
    /// lease-timeout (rather than EOF) reissue path.
    pub hang_after_cells: Option<usize>,
    /// Sleep this long before every cell (a deliberately slow worker,
    /// for work-stealing assertions).
    pub delay_per_cell: Option<Duration>,
    /// Sleep before sending the `n`-th (0-based) result line.
    pub delay_result: Option<(u64, Duration)>,
    /// Send the `n`-th (0-based) result line twice. The duplicate is
    /// bit-identical, so the coordinator tolerates and counts it.
    pub duplicate_result: Option<u64>,
    /// Garble the `n`-th (0-based) result line so it fails to parse,
    /// costing this worker its connection and the lease a reissue.
    pub corrupt_result: Option<u64>,
}

impl FaultPlan {
    /// No injected faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Applies one CLI fault clause to this plan. Clauses:
    /// `kill-after-cells=K`, `hang-after-cells=K`,
    /// `delay-per-cell-ms=MS`, `delay-result=N:MS`,
    /// `duplicate-result=N`, `corrupt-result=N`.
    pub fn apply(&mut self, clause: &str) -> Result<(), String> {
        let (key, value) = clause
            .split_once('=')
            .ok_or_else(|| format!("fault clause {clause:?} is not key=value"))?;
        let bad = |e: &dyn fmt::Display| format!("fault clause {clause:?}: {e}");
        match key {
            "kill-after-cells" => {
                self.kill_after_cells = Some(value.parse().map_err(|e| bad(&e))?);
            }
            "hang-after-cells" => {
                self.hang_after_cells = Some(value.parse().map_err(|e| bad(&e))?);
            }
            "delay-per-cell-ms" => {
                let ms: u64 = value.parse().map_err(|e| bad(&e))?;
                self.delay_per_cell = Some(Duration::from_millis(ms));
            }
            "delay-result" => {
                let (ordinal, ms) = value.split_once(':').ok_or_else(|| bad(&"expected N:MS"))?;
                self.delay_result = Some((
                    ordinal.parse().map_err(|e| bad(&e))?,
                    Duration::from_millis(ms.parse().map_err(|e| bad(&e))?),
                ));
            }
            "duplicate-result" => {
                self.duplicate_result = Some(value.parse().map_err(|e| bad(&e))?);
            }
            "corrupt-result" => {
                self.corrupt_result = Some(value.parse().map_err(|e| bad(&e))?);
            }
            other => return Err(format!("unknown fault kind {other:?}")),
        }
        Ok(())
    }
}

/// One worker's identity and behavior knobs.
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// Display name, carried in `hello` and the coordinator's skew
    /// table.
    pub name: String,
    /// Injected faults (default: none).
    pub fault: FaultPlan,
    /// Minimum interval between `heartbeat` frames while computing a
    /// lease (sent between cells).
    pub heartbeat: Duration,
    /// How many times to retry the initial connect (the coordinator
    /// may not be listening yet).
    pub connect_attempts: u32,
    /// Delay between connect retries.
    pub connect_retry: Duration,
}

impl WorkerConfig {
    /// A fault-free worker named `name` with default timing.
    pub fn named(name: &str) -> WorkerConfig {
        WorkerConfig {
            name: name.to_string(),
            fault: FaultPlan::none(),
            heartbeat: Duration::from_secs(1),
            connect_attempts: 50,
            connect_retry: Duration::from_millis(100),
        }
    }
}

/// Why a worker run failed.
#[derive(Debug)]
pub enum WorkerError {
    /// Socket or protocol failure.
    Io(String),
    /// The coordinator refused this worker's `hello` (manifest
    /// mismatch, usually).
    Rejected(String),
    /// The coordinator aborted the run.
    Aborted(String),
    /// The coordinator vanished mid-run.
    Disconnected,
}

impl fmt::Display for WorkerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerError::Io(detail) => write!(f, "worker I/O error: {detail}"),
            WorkerError::Rejected(reason) => write!(f, "coordinator rejected worker: {reason}"),
            WorkerError::Aborted(reason) => write!(f, "coordinator aborted the run: {reason}"),
            WorkerError::Disconnected => write!(f, "coordinator disconnected"),
        }
    }
}

impl std::error::Error for WorkerError {}

/// What one worker did, including whether an injected fault ended it.
#[derive(Clone, Debug, Default)]
pub struct WorkerSummary {
    /// The worker's name.
    pub name: String,
    /// Cells evaluated (whether or not their results survived).
    pub cells: usize,
    /// Result frames sent.
    pub leases: u64,
    /// Ended by [`FaultPlan::kill_after_cells`].
    pub killed: bool,
    /// Ended by [`FaultPlan::hang_after_cells`] (after the coordinator
    /// closed the hung connection).
    pub hung: bool,
}

/// Runs one worker over the full-agent grid against the coordinator at
/// `addr`, until the coordinator sends `done` (or a [`FaultPlan`] entry
/// ends the run early — reported in the summary, not as an error).
///
/// The scenario, seeds, catalog, and `instance` label must match the
/// coordinator's or the `hello` is rejected.
pub fn run_worker(
    scenario: &Scenario,
    seeds: &[u64],
    catalog: &Catalog,
    instance: &str,
    addr: &CoordAddr,
    config: WorkerConfig,
) -> Result<WorkerSummary, WorkerError> {
    let agents: Vec<usize> = (0..scenario.num_nodes()).collect();
    worker_inner(scenario, seeds, catalog, &agents, instance, addr, config)
}

/// [`run_worker`] restricted to deviations by `agents` — must match a
/// [`Coordinator::sampled`] grid.
///
/// # Panics
///
/// Panics if an agent index is out of range or listed twice.
pub fn run_worker_sampled(
    scenario: &Scenario,
    seeds: &[u64],
    catalog: &Catalog,
    agents: &[usize],
    instance: &str,
    addr: &CoordAddr,
    config: WorkerConfig,
) -> Result<WorkerSummary, WorkerError> {
    worker_inner(scenario, seeds, catalog, agents, instance, addr, config)
}

fn connect_with_retry(addr: &CoordAddr, config: &WorkerConfig) -> Result<Conn, WorkerError> {
    let mut last = None;
    for attempt in 0..config.connect_attempts.max(1) {
        if attempt > 0 {
            thread::sleep(config.connect_retry);
        }
        match Conn::connect(addr) {
            Ok(conn) => return Ok(conn),
            Err(e) => last = Some(e),
        }
    }
    Err(WorkerError::Io(format!(
        "could not connect to {addr}: {}",
        last.map(|e| e.to_string()).unwrap_or_default()
    )))
}

/// Blocks until the coordinator's next frame (or a timeout/EOF).
fn read_frame(reader: &mut LineReader) -> Result<Frame, WorkerError> {
    let deadline = Instant::now() + WORKER_FRAME_TIMEOUT;
    loop {
        match reader.next().map_err(|e| WorkerError::Io(e.to_string()))? {
            ReadEvent::Line(line) => return Frame::parse(&line).map_err(WorkerError::Io),
            ReadEvent::Tick => {
                if Instant::now() >= deadline {
                    return Err(WorkerError::Io("coordinator unresponsive".to_string()));
                }
            }
            ReadEvent::Eof => return Err(WorkerError::Disconnected),
        }
    }
}

/// Holds the connection open without responding until the coordinator
/// gives up on it — the tail of [`FaultPlan::hang_after_cells`].
fn hang_until_closed(reader: &mut LineReader) {
    loop {
        match reader.next() {
            Ok(ReadEvent::Line(line)) => {
                if matches!(Frame::parse(&line), Ok(Frame::Done | Frame::Abort { .. })) {
                    return;
                }
            }
            Ok(ReadEvent::Tick) => {}
            Ok(ReadEvent::Eof) | Err(_) => return,
        }
    }
}

fn worker_inner(
    scenario: &Scenario,
    seeds: &[u64],
    catalog: &Catalog,
    agents: &[usize],
    instance: &str,
    addr: &CoordAddr,
    config: WorkerConfig,
) -> Result<WorkerSummary, WorkerError> {
    // Same cache discipline as a shard job: a fresh eager scope with
    // the honest cache pinned for the worker's lifetime.
    let scenario = scenario.with_route_scope(CacheScope::eager());
    let _ = scenario
        .route_scope()
        .pin(scenario.topology(), scenario.costs());
    let manifest = GridManifest::sampled(&scenario, seeds, catalog, agents, instance);
    let specs = manifest.deviations.clone();

    let conn = connect_with_retry(addr, &config)?;
    conn.set_read_timeout(Some(TICK))
        .map_err(|e| WorkerError::Io(e.to_string()))?;
    let mut writer = conn
        .try_clone()
        .map_err(|e| WorkerError::Io(e.to_string()))?;
    let mut reader = LineReader::new(conn);
    let send = |writer: &mut Conn, frame: &Frame| {
        send_frame(writer, frame).map_err(|_| WorkerError::Disconnected)
    };

    send(
        &mut writer,
        &Frame::Hello {
            worker: config.name.clone(),
            manifest: manifest.clone(),
        },
    )?;
    match read_frame(&mut reader)? {
        Frame::Welcome { .. } => {}
        Frame::Reject { reason } => return Err(WorkerError::Rejected(reason)),
        Frame::Abort { reason } => return Err(WorkerError::Aborted(reason)),
        other => return Err(WorkerError::Io(format!("expected welcome, got {other:?}"))),
    }

    let started = Instant::now();
    let baselines: Vec<(u64, Vec<Money>)> = seeds
        .iter()
        .map(|&seed| (seed, evaluate_baseline(&scenario, seed).utilities))
        .collect();
    send(
        &mut writer,
        &Frame::Baselines {
            secs: started.elapsed().as_secs_f64(),
            baselines,
        },
    )?;

    let grid = deviation_grid(seeds, agents, specs.len());
    let mut summary = WorkerSummary {
        name: config.name.clone(),
        ..WorkerSummary::default()
    };
    let mut results_sent: u64 = 0;
    let mut last_heartbeat = Instant::now();
    loop {
        send(&mut writer, &Frame::Ready)?;
        match read_frame(&mut reader)? {
            Frame::Lease { lease, cells } => {
                let started = Instant::now();
                let mut evaluated = Vec::with_capacity(cells.len());
                for index in cells {
                    let cell = grid.get(index).ok_or_else(|| {
                        WorkerError::Io(format!("lease cell {index} outside the grid"))
                    })?;
                    if config.fault.kill_after_cells == Some(summary.cells) {
                        summary.killed = true;
                        return Ok(summary);
                    }
                    if config.fault.hang_after_cells == Some(summary.cells) {
                        summary.hung = true;
                        hang_until_closed(&mut reader);
                        return Ok(summary);
                    }
                    if let Some(delay) = config.fault.delay_per_cell {
                        thread::sleep(delay);
                    }
                    let result = evaluate(&scenario, catalog, cell);
                    evaluated.push(FragmentCell {
                        index,
                        seed: cell.base_seed,
                        agent: cell.agent,
                        deviation: cell.deviation,
                        deviant_utility: result.utilities[cell.agent],
                        detected: result.detected,
                    });
                    summary.cells += 1;
                    if last_heartbeat.elapsed() >= config.heartbeat {
                        send(&mut writer, &Frame::Heartbeat { lease })?;
                        last_heartbeat = Instant::now();
                    }
                }
                let mut line = Frame::Result {
                    lease,
                    secs: started.elapsed().as_secs_f64(),
                    cells: evaluated,
                }
                .to_line();
                if config.fault.corrupt_result == Some(results_sent) {
                    line = format!("<corrupt>{line}");
                }
                if let Some((ordinal, delay)) = config.fault.delay_result {
                    if ordinal == results_sent {
                        thread::sleep(delay);
                    }
                }
                send_line(&mut writer, &line).map_err(|_| WorkerError::Disconnected)?;
                if config.fault.duplicate_result == Some(results_sent) {
                    send_line(&mut writer, &line).map_err(|_| WorkerError::Disconnected)?;
                }
                results_sent += 1;
                summary.leases += 1;
            }
            Frame::Idle { retry_ms } => {
                thread::sleep(Duration::from_millis(retry_ms.min(200)));
            }
            Frame::Done => return Ok(summary),
            Frame::Abort { reason } => return Err(WorkerError::Aborted(reason)),
            other => {
                return Err(WorkerError::Io(format!(
                    "unexpected frame mid-run: {other:?}"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Mechanism, TopologySource, TrafficModel};

    fn tiny_scenario() -> Scenario {
        Scenario::builder()
            .topology(TopologySource::Figure1)
            .traffic(TrafficModel::single_by_index(5, 4, 3))
            .mechanism(Mechanism::faithful())
            .build()
    }

    fn small_catalog() -> Catalog {
        use specfaith_core::id::NodeId;
        use specfaith_fpss::deviation::standard_catalog;
        let _ = NodeId::new(0);
        Catalog::from_factory(|deviant| standard_catalog(deviant).into_iter().take(2).collect())
    }

    #[test]
    fn coord_addr_parses_and_displays() {
        assert_eq!(
            CoordAddr::parse("unix:/tmp/x.sock"),
            Ok(CoordAddr::Unix(PathBuf::from("/tmp/x.sock")))
        );
        assert_eq!(
            CoordAddr::parse("tcp:127.0.0.1:7744"),
            Ok(CoordAddr::Tcp("127.0.0.1:7744".to_string()))
        );
        assert_eq!(
            CoordAddr::parse("tcp:127.0.0.1:0").unwrap().to_string(),
            "tcp:127.0.0.1:0"
        );
        assert!(CoordAddr::parse("udp:nope").is_err());
        assert!(CoordAddr::parse("unix:").is_err());
        assert!(CoordAddr::parse("tcp:").is_err());
    }

    #[test]
    fn frames_round_trip_through_their_lines() {
        let scenario = tiny_scenario();
        let manifest = GridManifest::new(&scenario, &[7, 8], &small_catalog(), "tiny");
        let frames = vec![
            Frame::Hello {
                worker: "w-0".to_string(),
                manifest: manifest.clone(),
            },
            Frame::Welcome { grid_cells: 24 },
            Frame::Reject {
                reason: "manifest \"quoted\" mismatch".to_string(),
            },
            Frame::Baselines {
                secs: 0.25,
                baselines: vec![(7, vec![Money::new(-3), Money::new(12)])],
            },
            Frame::Ready,
            Frame::Lease {
                lease: 3,
                cells: vec![0, 1, 5],
            },
            Frame::Idle { retry_ms: 50 },
            Frame::Heartbeat { lease: 3 },
            Frame::Result {
                lease: 3,
                secs: 1.5,
                cells: vec![FragmentCell {
                    index: 5,
                    seed: 7,
                    agent: 2,
                    deviation: 1,
                    deviant_utility: Money::new(-44),
                    detected: true,
                }],
            },
            Frame::Done,
            Frame::Abort {
                reason: "retries exhausted".to_string(),
            },
        ];
        for frame in frames {
            let line = frame.to_line();
            assert!(!line.contains('\n'), "frames must be single lines: {line}");
            assert_eq!(Frame::parse(&line).expect("parse"), frame, "line: {line}");
        }
    }

    #[test]
    fn frame_parse_rejects_garbage_without_panicking() {
        for line in [
            "",
            "not json",
            "{}",
            "{\"frame\": \"warp\"}",
            "{\"frame\": \"lease\", \"lease\": 1}",
            "{\"frame\": \"hello\", \"format\": \"other-v9\"}",
            "{\"frame\": 7}",
            "[1, 2, 3]",
        ] {
            assert!(Frame::parse(line).is_err(), "line {line:?} must not parse");
        }
    }

    #[test]
    fn fault_plan_clauses_parse_and_reject() {
        let mut plan = FaultPlan::none();
        plan.apply("kill-after-cells=5").expect("kill");
        plan.apply("hang-after-cells=7").expect("hang");
        plan.apply("delay-per-cell-ms=250").expect("delay");
        plan.apply("delay-result=2:500").expect("delay result");
        plan.apply("duplicate-result=0").expect("dup");
        plan.apply("corrupt-result=1").expect("corrupt");
        assert_eq!(plan.kill_after_cells, Some(5));
        assert_eq!(plan.hang_after_cells, Some(7));
        assert_eq!(plan.delay_per_cell, Some(Duration::from_millis(250)));
        assert_eq!(plan.delay_result, Some((2, Duration::from_millis(500))));
        assert_eq!(plan.duplicate_result, Some(0));
        assert_eq!(plan.corrupt_result, Some(1));
        assert!(FaultPlan::none().apply("kill-after-cells").is_err());
        assert!(FaultPlan::none().apply("explode=9").is_err());
        assert!(FaultPlan::none().apply("delay-result=5").is_err());
        assert!(FaultPlan::none().apply("kill-after-cells=many").is_err());
    }

    #[test]
    fn manifest_mismatch_names_the_field() {
        let scenario = tiny_scenario();
        let catalog = small_catalog();
        let manifest = GridManifest::new(&scenario, &[7], &catalog, "tiny");
        assert_eq!(manifest.mismatch(&manifest.clone()), None);
        let mut other = manifest.clone();
        other.instance = "imposter".to_string();
        assert!(manifest
            .mismatch(&other)
            .expect("mismatch")
            .contains("instance"));
        let mut other = manifest.clone();
        other.seeds = vec![8];
        assert!(manifest
            .mismatch(&other)
            .expect("mismatch")
            .contains("seeds"));
        let mut other = manifest.clone();
        other.agents = vec![0];
        assert!(manifest
            .mismatch(&other)
            .expect("mismatch")
            .contains("agents"));
    }

    #[test]
    fn skew_summary_names_every_worker() {
        let stats = CoordStats {
            grid_cells: 12,
            workers: vec![
                WorkerStats {
                    name: "a".to_string(),
                    leases: 2,
                    cells: 8,
                    secs: 2.0,
                    baseline_secs: 0.5,
                },
                WorkerStats {
                    name: "b".to_string(),
                    ..WorkerStats::default()
                },
            ],
            ..CoordStats::default()
        };
        let summary = stats.skew_summary();
        assert!(summary.contains("worker a: 8 cells over 2 leases"));
        assert!(summary.contains("worker b: 0 cells"));
        assert!(summary.contains("idle"));
        assert!(summary.contains("throughput skew"));
    }
}
