//! The scenario builder: declarative sources for topology, costs, and
//! traffic, materialized into a [`Scenario`] at build time.

use super::{EngineConfig, Mechanism, Scenario};
use rand::rngs::StdRng;
use rand::SeedableRng;
use specfaith_core::id::NodeId;
use specfaith_faithful::harness::FaithfulConfig;
use specfaith_fpss::runner::{PlainConfig, ReferenceCheck};
use specfaith_fpss::settle::SettlementConfig;
use specfaith_fpss::traffic::{Flow, TrafficMatrix};
use specfaith_graph::cache::CacheScope;
use specfaith_graph::costs::CostVector;
use specfaith_graph::generators;
use specfaith_graph::topology::Topology;
use specfaith_netsim::{Dynamics, Latency, NetModel};
use std::fmt;

/// Where the scenario's topology comes from.
///
/// Random sources ([`TopologySource::RandomBiconnected`],
/// [`TopologySource::ScaleFree`]) draw from the builder's
/// [instance seed](ScenarioBuilder::instance_seed), so the materialized
/// network is a pure function of the builder configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologySource {
    /// The paper's 6-node Figure 1 network (with its stated costs, unless
    /// overridden by an explicit [`CostModel`]).
    Figure1,
    /// A cycle on `n ≥ 3` nodes.
    Ring(usize),
    /// A `w × h` grid (`w, h ≥ 2`).
    Grid(usize, usize),
    /// A ring of `n − 1` nodes plus a hub adjacent to all (`n ≥ 4`).
    Wheel(usize),
    /// The complete graph on `n ≥ 3` nodes.
    Complete(usize),
    /// A hub and `n − 1` leaves. **Not biconnected** — FPSS scenarios
    /// reject it at build time; see [`generators::star`].
    Star(usize),
    /// Barabási–Albert preferential attachment: `n` nodes, each newcomer
    /// attaching to `attachments ≥ 2` distinct nodes. Biconnected by
    /// construction; see [`generators::scale_free`].
    ScaleFree {
        /// Total nodes.
        n: usize,
        /// Edges each newcomer adds (`≥ 2`).
        attachments: usize,
    },
    /// A random Hamiltonian cycle plus `extra_edges` chords.
    RandomBiconnected {
        /// Total nodes.
        n: usize,
        /// Random chords added on top of the cycle.
        extra_edges: usize,
    },
    /// An explicit, caller-built topology.
    Explicit(Topology),
}

impl TopologySource {
    fn materialize(&self, rng: &mut StdRng) -> Topology {
        match self {
            TopologySource::Figure1 => generators::figure1().topology,
            TopologySource::Ring(n) => generators::ring(*n),
            TopologySource::Grid(w, h) => generators::grid(*w, *h),
            TopologySource::Wheel(n) => generators::wheel(*n),
            TopologySource::Complete(n) => generators::complete(*n),
            TopologySource::Star(n) => generators::star(*n),
            TopologySource::ScaleFree { n, attachments } => {
                generators::scale_free(*n, *attachments, rng)
            }
            TopologySource::RandomBiconnected { n, extra_edges } => {
                generators::random_biconnected(*n, *extra_edges, rng)
            }
            TopologySource::Explicit(topo) => topo.clone(),
        }
    }
}

/// Where the scenario's true transit costs come from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CostModel {
    /// Figure 1's stated costs when the topology is
    /// [`TopologySource::Figure1`], otherwise `Uniform(1)`.
    Default,
    /// Every node costs the same.
    Uniform(u64),
    /// Uniformly random costs in `lo..=hi`, drawn from the instance seed.
    Random {
        /// Lowest cost (inclusive).
        lo: u64,
        /// Highest cost (inclusive).
        hi: u64,
    },
    /// An explicit cost vector (arity must match the topology).
    Explicit(CostVector),
}

impl CostModel {
    fn materialize(&self, source: &TopologySource, n: usize, rng: &mut StdRng) -> CostVector {
        match self {
            CostModel::Default => match source {
                TopologySource::Figure1 => generators::figure1().costs,
                _ => CostVector::uniform(n, 1),
            },
            CostModel::Uniform(cost) => CostVector::uniform(n, *cost),
            CostModel::Random { lo, hi } => CostVector::random(n, *lo, *hi, rng),
            CostModel::Explicit(costs) => costs.clone(),
        }
    }
}

/// What the scenario's execution-phase traffic looks like.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrafficModel {
    /// One flow.
    Single {
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Packets sent.
        packets: u64,
    },
    /// Explicit flows.
    Flows(Vec<Flow>),
    /// Every ordered node pair sends `packets` packets
    /// ([`TrafficMatrix::uniform_all_pairs`]).
    UniformAllPairs {
        /// Packets per ordered pair.
        packets: u64,
    },
    /// Every node sends `packets` packets to one hotspot destination
    /// ([`TrafficMatrix::hotspot`]).
    Hotspot {
        /// The destination every other node converges on.
        hotspot: NodeId,
        /// Packets per source.
        packets: u64,
    },
    /// `flows` random flows with `1..=max_packets` packets each, drawn
    /// from the instance seed.
    Random {
        /// Number of flows.
        flows: usize,
        /// Maximum packets per flow.
        max_packets: u64,
    },
}

impl TrafficModel {
    /// A single flow named by node *indices* — convenient when the
    /// topology is declarative and `NodeId`s do not exist yet (e.g.
    /// Figure 1's X is index 5, Z is index 4).
    pub fn single_by_index(src: usize, dst: usize, packets: u64) -> Self {
        TrafficModel::Single {
            src: NodeId::from_index(src),
            dst: NodeId::from_index(dst),
            packets,
        }
    }

    fn materialize(&self, n: usize, rng: &mut StdRng) -> TrafficMatrix {
        match self {
            TrafficModel::Single { src, dst, packets } => {
                TrafficMatrix::single(*src, *dst, *packets)
            }
            TrafficModel::Flows(flows) => TrafficMatrix::from_flows(flows.clone()),
            TrafficModel::UniformAllPairs { packets } => {
                TrafficMatrix::uniform_all_pairs(n, *packets)
            }
            TrafficModel::Hotspot { hotspot, packets } => {
                TrafficMatrix::hotspot(n, *hotspot, *packets)
            }
            TrafficModel::Random { flows, max_packets } => {
                TrafficMatrix::random(n, *flows, *max_packets, rng)
            }
        }
    }
}

/// Why a scenario could not be built.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScenarioError {
    /// The materialized topology is not biconnected (FPSS requires
    /// biconnectivity; e.g. every [`TopologySource::Star`]).
    NotBiconnected {
        /// Nodes in the offending topology.
        nodes: usize,
    },
    /// An explicit cost vector's arity does not match the topology.
    CostArityMismatch {
        /// Topology nodes.
        nodes: usize,
        /// Cost vector length.
        costs: usize,
    },
    /// A traffic endpoint names a node outside the topology.
    TrafficOutOfRange {
        /// Topology nodes.
        nodes: usize,
        /// The offending endpoint.
        endpoint: NodeId,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::NotBiconnected { nodes } => write!(
                f,
                "topology on {nodes} nodes is not biconnected; FPSS requires a biconnected \
                 graph (stars never qualify — use a wheel for hub-and-spoke)"
            ),
            ScenarioError::CostArityMismatch { nodes, costs } => write!(
                f,
                "cost vector has {costs} entries for a topology of {nodes} nodes"
            ),
            ScenarioError::TrafficOutOfRange { nodes, endpoint } => write!(
                f,
                "traffic endpoint {endpoint} is outside the {nodes}-node topology"
            ),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Builder for [`Scenario`]; see the [module docs](crate::scenario) for
/// the full tour.
///
/// Defaults: Figure 1 topology with its paper costs, X→Z traffic of 5
/// packets, fixed 10 µs latency, the plain mechanism, and the engines'
/// default settlement and event budgets.
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    topology: TopologySource,
    costs: CostModel,
    traffic: TrafficModel,
    latency: Latency,
    network: NetModel,
    dynamics: Dynamics,
    mechanism: Mechanism,
    settlement: SettlementConfig,
    max_events: Option<u64>,
    instance_seed: u64,
    route_scope: Option<CacheScope>,
    reference_check: ReferenceCheck,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        ScenarioBuilder {
            topology: TopologySource::Figure1,
            costs: CostModel::Default,
            // Figure 1's X (index 5) → Z (index 4), the paper's flow.
            traffic: TrafficModel::single_by_index(5, 4, 5),
            latency: Latency::DEFAULT,
            network: NetModel::DEFAULT,
            dynamics: Dynamics::new(),
            mechanism: Mechanism::Plain,
            settlement: SettlementConfig::default(),
            max_events: None,
            instance_seed: 0,
            route_scope: None,
            reference_check: ReferenceCheck::Full,
        }
    }
}

impl ScenarioBuilder {
    /// A builder with the defaults above.
    pub fn new() -> Self {
        Self::default()
    }

    /// A preset for large sparse scale-free workloads (`n ≥ 1024`):
    /// Barabási–Albert topology with two attachments per newcomer,
    /// random costs in `1..=20`, `max(32, n/16)` random flows, the plain
    /// mechanism, a destination-sampled reference check (64 sources),
    /// and an event budget sized for large-`n` construction.
    ///
    /// Returned as a builder so callers can still override any choice
    /// (e.g. switch the mechanism or tighten the reference check).
    pub fn large_scale_free(n: usize) -> Self {
        ScenarioBuilder::new()
            .topology(TopologySource::ScaleFree { n, attachments: 2 })
            .large_sparse_defaults(n)
    }

    /// A preset for large sparse grid workloads: a `side × side` grid
    /// with the same cost/traffic/check defaults as
    /// [`ScenarioBuilder::large_scale_free`].
    pub fn large_grid(side: usize) -> Self {
        ScenarioBuilder::new()
            .topology(TopologySource::Grid(side, side))
            .large_sparse_defaults(side * side)
    }

    /// The shared large-`n` defaults behind the presets above.
    fn large_sparse_defaults(self, n: usize) -> Self {
        self.costs(CostModel::Random { lo: 1, hi: 20 })
            .traffic(TrafficModel::Random {
                flows: (n / 16).max(32),
                max_packets: 3,
            })
            .mechanism(Mechanism::Plain)
            .reference_check(ReferenceCheck::Sampled { sources: 64 })
            .max_events(1_000_000_000)
    }

    /// Sets the topology source.
    #[must_use]
    pub fn topology(mut self, topology: TopologySource) -> Self {
        self.topology = topology;
        self
    }

    /// Sets the cost model.
    #[must_use]
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Sets the traffic model.
    #[must_use]
    pub fn traffic(mut self, traffic: TrafficModel) -> Self {
        self.traffic = traffic;
        self
    }

    /// Sets the link latency model.
    #[must_use]
    pub fn latency(mut self, latency: Latency) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the network model — how message size and link load decide
    /// delivery times. Defaults to [`NetModel::Ideal`] (latency-only,
    /// byte-identical to scenarios built before the model existed).
    /// Presets: [`NetModel::constant`], [`NetModel::shared`],
    /// [`NetModel::congested`], and [`NetModel::with_loss`] for seeded
    /// drops.
    #[must_use]
    pub fn network(mut self, network: NetModel) -> Self {
        self.network = network;
        self
    }

    /// Schedules topology dynamics (partitions, node churn, link-cost
    /// changes) applied at sim times during every run of the scenario.
    /// Defaults to none.
    #[must_use]
    pub fn dynamics(mut self, dynamics: Dynamics) -> Self {
        self.dynamics = dynamics;
        self
    }

    /// Sets the mechanism.
    #[must_use]
    pub fn mechanism(mut self, mechanism: Mechanism) -> Self {
        self.mechanism = mechanism;
        self
    }

    /// Sets the settlement parameters used by **plain** runs. (Faithful
    /// runs settle with the [`Mechanism::Faithful`] variant's embedded
    /// settlement.)
    #[must_use]
    pub fn settlement(mut self, settlement: SettlementConfig) -> Self {
        self.settlement = settlement;
        self
    }

    /// Overrides the simulator event budget (defaults to the engine's:
    /// 5M events plain, 10M faithful).
    #[must_use]
    pub fn max_events(mut self, max_events: u64) -> Self {
        self.max_events = Some(max_events);
        self
    }

    /// Seed from which random *sources* (topology, costs, traffic) are
    /// materialized at build time. Distinct from the run seed: the
    /// instance seed decides *which network exists*, the run seed decides
    /// *how one simulation of it unfolds*.
    #[must_use]
    pub fn instance_seed(mut self, seed: u64) -> Self {
        self.instance_seed = seed;
        self
    }

    /// Overrides the route-cache scope the scenario's runs draw from.
    /// Defaults to a scenario-owned bounded scope (dropped with the
    /// scenario); sweeps always substitute a sweep-scoped registry of
    /// their own regardless of this setting.
    #[must_use]
    pub fn route_scope(mut self, scope: CacheScope) -> Self {
        self.route_scope = Some(scope);
        self
    }

    /// Sets how runs compare converged tables against the centralized
    /// VCG reference: [`ReferenceCheck::Full`] (default) verifies every
    /// node; [`ReferenceCheck::Sampled`] verifies a deterministic sample
    /// — the large-`n` setting, where full verification costs one LCP
    /// tree per node plus avoid trees for every on-path transit.
    #[must_use]
    pub fn reference_check(mut self, check: ReferenceCheck) -> Self {
        self.reference_check = check;
        self
    }

    /// Materializes and validates the scenario.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] when the topology is not biconnected
    /// (e.g. any star), costs mismatch arity, or traffic endpoints fall
    /// outside the topology.
    pub fn try_build(self) -> Result<Scenario, ScenarioError> {
        let mut rng = StdRng::seed_from_u64(self.instance_seed);
        let topo = self.topology.materialize(&mut rng);
        let n = topo.num_nodes();
        if !topo.is_biconnected() {
            return Err(ScenarioError::NotBiconnected { nodes: n });
        }
        let costs = self.costs.materialize(&self.topology, n, &mut rng);
        if costs.len() != n {
            return Err(ScenarioError::CostArityMismatch {
                nodes: n,
                costs: costs.len(),
            });
        }
        // Validate declared endpoints *before* materializing: the traffic
        // constructors assert in-range endpoints, and try_build's contract
        // is Err, not panic. (Generated models — UniformAllPairs, Random —
        // are in-range by construction.)
        let declared_endpoints: Vec<NodeId> = match &self.traffic {
            TrafficModel::Single { src, dst, .. } => vec![*src, *dst],
            TrafficModel::Flows(flows) => flows.iter().flat_map(|f| [f.src, f.dst]).collect(),
            TrafficModel::Hotspot { hotspot, .. } => vec![*hotspot],
            TrafficModel::UniformAllPairs { .. } | TrafficModel::Random { .. } => Vec::new(),
        };
        if let Some(&endpoint) = declared_endpoints.iter().find(|e| e.index() >= n) {
            return Err(ScenarioError::TrafficOutOfRange { nodes: n, endpoint });
        }
        let traffic = self.traffic.materialize(n, &mut rng);

        // Each scenario owns its route caches: an explicit scope when the
        // builder was given one, otherwise a scenario-scoped registry
        // (bounded like the old process-wide default, but private — two
        // scenarios can never evict each other's caches, and the memory
        // dies with the scenario). Sweeps substitute a sweep-scoped
        // registry on top of this.
        let routes = self.route_scope.unwrap_or_else(|| CacheScope::bounded(64));
        let engine = match &self.mechanism {
            Mechanism::Plain => {
                let mut config = PlainConfig::new(topo, costs, traffic);
                config.latency = self.latency;
                config.network = self.network.clone();
                config.dynamics = self.dynamics.clone();
                config.settlement = self.settlement;
                config.routes = routes;
                config.reference_check = self.reference_check;
                if let Some(max_events) = self.max_events {
                    config.max_events = max_events;
                }
                EngineConfig::Plain(config)
            }
            Mechanism::Faithful {
                epsilon,
                max_restarts,
                progress_value,
                settlement,
            } => {
                let mut config = FaithfulConfig::new(topo, costs, traffic);
                config.latency = self.latency;
                config.network = self.network.clone();
                config.dynamics = self.dynamics.clone();
                config.epsilon = *epsilon;
                config.max_restarts = *max_restarts;
                config.progress_value = *progress_value;
                config.settlement = *settlement;
                config.routes = routes;
                config.reference_check = self.reference_check;
                if let Some(max_events) = self.max_events {
                    config.max_events = max_events;
                }
                EngineConfig::Faithful(config)
            }
        };
        Ok(Scenario::from_parts(engine, self.mechanism))
    }

    /// Materializes and validates the scenario, panicking on invalid
    /// configurations. Use [`ScenarioBuilder::try_build`] to handle
    /// rejection (e.g. probing whether a topology qualifies).
    ///
    /// # Panics
    ///
    /// Panics with the [`ScenarioError`] message on invalid
    /// configurations.
    pub fn build(self) -> Scenario {
        match self.try_build() {
            Ok(scenario) => scenario,
            Err(error) => panic!("invalid scenario: {error}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Mechanism;

    #[test]
    fn default_builder_is_figure1_plain() {
        let scenario = Scenario::builder().build();
        assert_eq!(scenario.num_nodes(), 6);
        assert_eq!(
            scenario.costs().cost(NodeId::new(2)).value(),
            1,
            "C costs 1"
        );
        assert_eq!(scenario.traffic().flows().len(), 1);
        assert!(!scenario.mechanism().is_faithful());
    }

    #[test]
    fn star_topologies_are_rejected_not_built() {
        let err = Scenario::builder()
            .topology(TopologySource::Star(6))
            .try_build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::NotBiconnected { nodes: 6 });
        assert!(err.to_string().contains("not biconnected"));
    }

    #[test]
    #[should_panic(expected = "not biconnected")]
    fn star_build_panics_with_the_same_message() {
        let _ = Scenario::builder()
            .topology(TopologySource::Star(4))
            .build();
    }

    #[test]
    fn scale_free_scenarios_build_and_run() {
        let scenario = Scenario::builder()
            .topology(TopologySource::ScaleFree {
                n: 12,
                attachments: 2,
            })
            .costs(CostModel::Random { lo: 1, hi: 9 })
            .traffic(TrafficModel::Random {
                flows: 4,
                max_packets: 3,
            })
            .instance_seed(7)
            .build();
        assert_eq!(scenario.num_nodes(), 12);
        assert!(scenario.topology().is_biconnected());
        let run = scenario.run(1);
        assert!(!run.truncated);
        assert_eq!(run.tables_match_centralized(), Some(true));
    }

    #[test]
    fn instance_seed_decides_the_network() {
        let build = |instance_seed| {
            Scenario::builder()
                .topology(TopologySource::RandomBiconnected {
                    n: 10,
                    extra_edges: 3,
                })
                .instance_seed(instance_seed)
                .build()
        };
        assert_eq!(build(1).topology(), build(1).topology());
        assert_ne!(build(1).topology(), build(2).topology());
    }

    #[test]
    fn explicit_cost_arity_is_validated() {
        let err = Scenario::builder()
            .topology(TopologySource::Ring(5))
            .costs(CostModel::Explicit(CostVector::uniform(3, 1)))
            .try_build()
            .unwrap_err();
        assert_eq!(err, ScenarioError::CostArityMismatch { nodes: 5, costs: 3 });
    }

    #[test]
    fn traffic_endpoints_are_validated() {
        let err = Scenario::builder()
            .topology(TopologySource::Ring(4))
            .traffic(TrafficModel::single_by_index(0, 9, 1))
            .try_build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::TrafficOutOfRange { .. }));
    }

    #[test]
    fn out_of_range_hotspot_is_an_error_not_a_panic() {
        // TrafficMatrix::hotspot asserts its center in range; try_build's
        // contract is Err, so validation must run before materialization.
        let err = Scenario::builder()
            .topology(TopologySource::Ring(4))
            .traffic(TrafficModel::Hotspot {
                hotspot: NodeId::new(9),
                packets: 1,
            })
            .try_build()
            .unwrap_err();
        assert_eq!(
            err,
            ScenarioError::TrafficOutOfRange {
                nodes: 4,
                endpoint: NodeId::new(9)
            }
        );

        let err = Scenario::builder()
            .topology(TopologySource::Ring(4))
            .traffic(TrafficModel::Flows(vec![Flow {
                src: NodeId::new(1),
                dst: NodeId::new(7),
                packets: 1,
            }]))
            .try_build()
            .unwrap_err();
        assert!(matches!(err, ScenarioError::TrafficOutOfRange { .. }));
    }

    #[test]
    fn hotspot_traffic_materializes_against_topology_size() {
        let scenario = Scenario::builder()
            .topology(TopologySource::Wheel(7))
            .costs(CostModel::Uniform(2))
            .traffic(TrafficModel::Hotspot {
                hotspot: NodeId::new(6),
                packets: 2,
            })
            .mechanism(Mechanism::faithful())
            .build();
        assert_eq!(scenario.traffic().flows().len(), 6);
        let run = scenario.run(3);
        assert!(run.green_lighted() && !run.detected);
    }

    #[test]
    fn uniform_all_pairs_traffic_scales_with_n() {
        let scenario = Scenario::builder()
            .topology(TopologySource::Complete(5))
            .costs(CostModel::Uniform(1))
            .traffic(TrafficModel::UniformAllPairs { packets: 1 })
            .build();
        assert_eq!(scenario.traffic().flows().len(), 20);
    }
}
