//! # specfaith
//!
//! A Rust reproduction of *"Specification Faithfulness in Networks with
//! Rational Nodes"* (Jeffrey Shneidman & David C. Parkes, PODC 2004): a
//! framework for building — and empirically certifying — distributed
//! mechanism specifications that rational, utility-maximizing nodes will
//! choose to follow.
//!
//! This facade re-exports the whole workspace:
//!
//! * [`core`] — the mechanism-design formalism: action classification
//!   (information-revelation / message-passing / computation),
//!   strategyproofness and ex post Nash testers, generic VCG, phase
//!   decomposition, and the extended failure taxonomy.
//! * [`crypto`] — SHA-256, HMAC, authenticated bank channels, table
//!   hashing.
//! * [`graph`] — node-weighted topologies, biconnectivity, lowest-cost
//!   paths with deterministic tie-breaking, the paper's Figure 1.
//! * [`netsim`] — the deterministic discrete-event simulator.
//! * [`fpss`] — plain FPSS lowest-cost interdomain routing (distributed
//!   LCP + VCG pricing), its execution phase, and the deviation library.
//! * [`faithful`] — the paper's faithful extension: checker nodes, the
//!   checkpointing bank, catch-and-punish, and the Theorem-1 experiment
//!   harness.
//!
//! # Quickstart
//!
//! Run the faithful mechanism on the paper's Figure 1 network and check
//! that the standard deviation catalog is unprofitable:
//!
//! ```
//! use specfaith::faithful::harness::FaithfulSim;
//! use specfaith::fpss::traffic::TrafficMatrix;
//! use specfaith::graph::generators::figure1;
//!
//! let net = figure1();
//! let sim = FaithfulSim::new(
//!     net.topology.clone(),
//!     net.costs.clone(),
//!     TrafficMatrix::single(net.x, net.z, 5),
//! );
//! let report = sim.equilibrium_report(42);
//! assert!(report.is_ex_post_nash());
//! assert!(report.strong_cc_holds() && report.strong_ac_holds());
//! ```

pub use specfaith_core as core;
pub use specfaith_crypto as crypto;
pub use specfaith_faithful as faithful;
pub use specfaith_fpss as fpss;
pub use specfaith_graph as graph;
pub use specfaith_netsim as netsim;

/// Convenient single-import surface for examples and downstream users.
pub mod prelude {
    pub use specfaith_core::actions::{CompatibilityKind, DeviationSurface, ExternalActionKind};
    pub use specfaith_core::equilibrium::{DeviationSpec, EquilibriumReport, EquilibriumSuite};
    pub use specfaith_core::faithfulness::FaithfulnessCertificate;
    pub use specfaith_core::id::NodeId;
    pub use specfaith_core::money::{Cost, Money};
    pub use specfaith_faithful::harness::{FaithfulRunResult, FaithfulSim};
    pub use specfaith_faithful::metrics::measure_overhead;
    pub use specfaith_fpss::deviation::{Faithful, RationalStrategy};
    pub use specfaith_fpss::runner::{PlainFpssSim, PlainRunResult};
    pub use specfaith_fpss::traffic::{Flow, TrafficMatrix};
    pub use specfaith_graph::costs::CostVector;
    pub use specfaith_graph::generators::{figure1, random_biconnected};
    pub use specfaith_graph::topology::Topology;
}
