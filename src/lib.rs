//! # specfaith
//!
//! A Rust reproduction of *"Specification Faithfulness in Networks with
//! Rational Nodes"* (Jeffrey Shneidman & David C. Parkes, PODC 2004): a
//! framework for building — and empirically certifying — distributed
//! mechanism specifications that rational, utility-maximizing nodes will
//! choose to follow.
//!
//! This facade re-exports the whole workspace:
//!
//! * [`core`] — the mechanism-design formalism: action classification
//!   (information-revelation / message-passing / computation),
//!   strategyproofness and ex post Nash testers, generic VCG, phase
//!   decomposition, and the extended failure taxonomy.
//! * [`crypto`] — SHA-256, HMAC, authenticated bank channels, table
//!   hashing.
//! * [`graph`] — node-weighted topologies, biconnectivity, lowest-cost
//!   paths with deterministic tie-breaking, the paper's Figure 1, and the
//!   synthetic families (rings, grids, wheels, stars, scale-free, random
//!   biconnected).
//! * [`netsim`] — the deterministic discrete-event simulator.
//! * [`fpss`] — plain FPSS lowest-cost interdomain routing (distributed
//!   LCP + VCG pricing), its execution phase, the deviation library, and
//!   the plain run engine.
//! * [`faithful`] — the paper's faithful extension: checker nodes, the
//!   checkpointing bank, catch-and-punish, and the faithful run engine.
//! * [`scenario`] — **the front door**: one builder for plain and
//!   faithful runs, and parallel Theorem-1 deviation sweeps.
//!
//! # Quickstart
//!
//! Describe the experiment — topology, traffic, mechanism — build it, and
//! sweep the standard deviation catalog:
//!
//! ```
//! use specfaith::scenario::{Catalog, Mechanism, Scenario, TopologySource, TrafficModel};
//!
//! let scenario = Scenario::builder()
//!     .topology(TopologySource::Figure1)
//!     .traffic(TrafficModel::single_by_index(5, 4, 5)) // X sends 5 packets to Z
//!     .mechanism(Mechanism::faithful())
//!     .build();
//!
//! let report = scenario.sweep(&[42], &Catalog::standard());
//! assert!(report.is_ex_post_nash());
//! assert!(report.strong_cc_holds() && report.strong_ac_holds());
//! ```

pub use specfaith_core as core;
pub use specfaith_crypto as crypto;
pub use specfaith_faithful as faithful;
pub use specfaith_fpss as fpss;
pub use specfaith_graph as graph;
pub use specfaith_netsim as netsim;

pub mod scenario;

/// Convenient single-import surface for examples and downstream users.
pub mod prelude {
    pub use crate::scenario::{
        run_worker, run_worker_sampled, CacheScope, Catalog, CoordAddr, CoordConfig, CoordError,
        CoordListener, CoordOutcome, CoordStats, Coordinator, CostModel, Dynamics, FaultPlan,
        Mechanism, MechanismOutcome, MergeError, NetModel, ReferenceCheck, RunReport, Scenario,
        ScenarioBuilder, ScenarioError, ShardSpec, StreamEvent, StreamReport, StreamSession,
        StreamStatus, SweepFragment, SweepReport, TopologyEvent, TopologySource, TrafficModel,
        WorkerConfig, WorkerError, WorkerSummary,
    };
    pub use specfaith_core::actions::{CompatibilityKind, DeviationSurface, ExternalActionKind};
    pub use specfaith_core::equilibrium::{DeviationSpec, EquilibriumReport, EquilibriumSuite};
    pub use specfaith_core::faithfulness::FaithfulnessCertificate;
    pub use specfaith_core::id::NodeId;
    pub use specfaith_core::money::{Cost, Money};
    pub use specfaith_faithful::harness::{FaithfulConfig, FaithfulRunResult};
    pub use specfaith_faithful::metrics::measure_overhead;
    pub use specfaith_fpss::deviation::{Faithful, RationalStrategy};
    pub use specfaith_fpss::runner::{PlainConfig, PlainRunResult};
    pub use specfaith_fpss::traffic::{Flow, TrafficMatrix};
    pub use specfaith_graph::costs::CostVector;
    pub use specfaith_graph::generators::{figure1, random_biconnected};
    pub use specfaith_graph::topology::Topology;
    pub use specfaith_netsim::Latency;

    // Deprecated one-mechanism builders, re-exported for one release.
    #[allow(deprecated)]
    pub use specfaith_faithful::harness::FaithfulSim;
    #[allow(deprecated)]
    pub use specfaith_fpss::runner::PlainFpssSim;
}
